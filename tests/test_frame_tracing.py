"""Tests for end-to-end frame-lifecycle tracing, the frame ledger, the
SLO engine, and Prometheus exposition.

The tentpole invariant: one uploaded frame == one causally-linked span
tree whose ``trace_id`` survives serialization, ARQ retransmission,
admission, GPU batching, shard locking and the pose downlink.  These
tests pin that propagation at every boundary, plus the export formats
(Chrome/Perfetto JSON, streaming JSONL) and the derived views
(FrameLedger, SLO burn rates, Prometheus text with exemplars).
"""

import json

import pytest

from repro.core import ClientScenario, SlamShareConfig, SlamShareSession
from repro.datasets import euroc_dataset
from repro.net import (
    ArqConfig,
    Link,
    ShapingProfile,
    SimClock,
    TRACE_CONTEXT_BYTES,
    connect,
    deserialize_trace_context,
    serialize_trace_context,
)
from repro.net.link import DuplexLink
from repro.obs import (
    FrameLedger,
    SloEngine,
    SloSpec,
    TraceContext,
    default_slos,
    get_metrics,
    get_tracer,
    load_jsonl,
    render_report_html,
)


@pytest.fixture
def tracer():
    """A fresh, enabled tracer (restores global state afterwards)."""
    t = get_tracer()
    was_enabled, old_clock, old_capacity = t.enabled, t.clock, t.capacity
    t.close_stream()
    t.reset()
    t.configure(enabled=True)
    t.clock = None
    yield t
    t.close_stream()
    t.reset()
    t.enabled = was_enabled
    t.clock = old_clock
    t.capacity = old_capacity


@pytest.fixture
def metrics():
    m = get_metrics()
    was_enabled = m.enabled
    m.reset()
    m.configure(enabled=True)
    yield m
    m.reset()
    m.enabled = was_enabled


def _run_traced_session(duration=4.0, shaping=None):
    mh04 = euroc_dataset("MH04", duration=duration, rate=10.0)
    mh05 = euroc_dataset("MH05", duration=duration, rate=10.0)
    config = SlamShareConfig(camera_fps=10.0, render_video_frames=False)
    if shaping is not None:
        config.shaping = shaping
    session = SlamShareSession(
        [
            ClientScenario(0, mh04),
            ClientScenario(1, mh05, start_time=1.0, oracle_seed=9,
                           imu_seed=13),
        ],
        config,
    )
    return session.run()


class TestTraceContextWire:
    def test_round_trip(self):
        ctx = TraceContext(trace_id=123456789, span_id=987654321)
        blob = serialize_trace_context(ctx)
        assert len(blob) == TRACE_CONTEXT_BYTES
        back = deserialize_trace_context(blob)
        assert back.trace_id == ctx.trace_id
        assert back.span_id == ctx.span_id

    def test_wire_bytes_accounting(self, tracer):
        clock = SimClock()
        link = DuplexLink(uplink=Link(clock), downlink=Link(clock))
        client, server = connect("c", "s", clock, link)
        plain = client.send("frame", 1000)
        traced = client.send("frame", 1000, trace=TraceContext(1, 2))
        assert traced.wire_bytes == plain.wire_bytes + TRACE_CONTEXT_BYTES


class TestTransportPropagation:
    def _lossy_pair(self, loss_rate, seed=0):
        clock = SimClock()
        link = DuplexLink(
            uplink=Link(clock, loss_rate=loss_rate, seed=seed),
            downlink=Link(clock, loss_rate=loss_rate, seed=seed + 1),
        )
        client, server = connect(
            "c", "s", clock, link,
            arq=ArqConfig(initial_timeout_s=0.05, max_retries=12),
        )
        return clock, client, server

    def test_trace_survives_retransmits(self, tracer):
        """Reliable sends over a 40% lossy link: every delivered message
        still carries its original trace context, and the retransmit
        instants recorded on the way tag the same trace_id."""
        clock, client, server = self._lossy_pair(0.4, seed=3)
        contexts = {}
        for i in range(40):
            ctx = tracer.open_trace("frame.lifecycle", frame=i)
            contexts[ctx.trace_id] = ctx
            client.send("frame", 500, payload=i, reliable=True, trace=ctx)
        clock.run()
        delivered = [m for m in server.received if m.msg_type == "frame"]
        assert delivered, "lossy ARQ run delivered nothing"
        for message in delivered:
            assert message.trace is not None
            assert message.trace.trace_id in contexts
        retransmitted = [m for m in delivered if m.attempts > 1]
        assert retransmitted, "40% loss should force at least one retry"
        retrans_spans = tracer.find("net.retransmit.frame")
        assert retrans_spans
        assert all(s.trace_id in contexts for s in retrans_spans)
        for ctx in contexts.values():
            tracer.close_trace(ctx, status="complete")

    def test_delivery_span_records_attempts(self, tracer):
        clock, client, server = self._lossy_pair(0.4, seed=5)
        ctx = tracer.open_trace("frame.lifecycle", frame=0)
        for _ in range(30):  # one trace, many sends: some will retry
            client.send("frame", 400, reliable=True, trace=ctx)
        clock.run()
        tracer.close_trace(ctx, status="complete")
        uplinks = tracer.find("net.frame")
        assert uplinks
        assert all(s.trace_id == ctx.trace_id for s in uplinks)
        assert any(s.attrs.get("attempts", 1) > 1 for s in uplinks)
        # Drops on the best-effort path tag the trace too.
        clock2, client2, _ = self._lossy_pair(0.99, seed=7)
        ctx2 = tracer.open_trace("frame.lifecycle", frame=1)
        for _ in range(10):
            client2.send("frame", 400, trace=ctx2)
        clock2.run()
        tracer.close_trace(ctx2, status="uplink_dropped")
        drops = tracer.find("net.drop.frame")
        assert drops and drops[0].trace_id == ctx2.trace_id


class TestSessionEndToEnd:
    def test_every_frame_is_one_linked_tree(self, tracer):
        """The acceptance criterion, in miniature: a 2-client session
        where every completed frame yields exactly one causally-linked
        span tree covering uplink -> admission -> kernel -> downlink."""
        result = _run_traced_session()
        processed = sum(
            o.frames_processed for o in result.outcomes.values()
        )
        ledger = FrameLedger.from_tracer(tracer)
        complete = ledger.complete_frames()
        assert processed > 0
        assert len(complete) == processed
        for record in complete:
            assert record.linked, f"frame {record.frame_no} tree broken"
            for stage in ("uplink", "admission", "tracking", "kernel",
                          "downlink"):
                assert stage in record.stages, (
                    f"frame {record.frame_no} missing {stage}: "
                    f"{sorted(record.stages)}"
                )
            assert record.total_ms > 0
            assert record.n_spans >= 5
        # Every GPU kernel span carries its frame's trace id.
        kernels = tracer.find("gpu.kernel")
        assert kernels
        assert all(s.trace_id is not None for s in kernels)
        assert tracer.open_trace_count() == 0

    def test_batched_kernels_join_the_trace(self, tracer):
        """Coalesced dispatches tag each member span with the shared
        batch_id, and the ledger surfaces it per frame."""
        from repro.gpu.scheduler import BatchingConfig, GpuScheduler
        clock = SimClock()
        tracer.bind_clock(clock)
        scheduler = GpuScheduler(
            clock, mode="spatial", n_clients=4,
            batching=BatchingConfig(window_s=0.01),
        )
        contexts = []
        for client_id in range(4):  # simultaneous -> one coalesced batch
            ctx = tracer.open_trace("frame.lifecycle", client_id=client_id,
                                    frame=0)
            contexts.append(ctx)
            scheduler.submit(client_id, 0.005, trace=ctx)
        clock.run()
        for ctx in contexts:
            tracer.close_trace(ctx, status="complete")
        assert scheduler.batches_dispatched >= 1
        kernels = tracer.find("gpu.kernel")
        assert len(kernels) == 4
        batch_ids = {s.attrs.get("batch_id") for s in kernels}
        assert all(b is not None and b >= 0 for b in batch_ids)
        assert {s.trace_id for s in kernels} == \
            {c.trace_id for c in contexts}
        ledger = FrameLedger.from_tracer(tracer)
        assert all(r.batch_id is not None for r in ledger.records())

    def test_lossy_session_statuses_partition_frames(self, tracer):
        """Under loss, every opened trace still closes with a terminal
        status; dropped uplinks land in uplink_dropped, not limbo."""
        lossy = ShapingProfile("lossy wifi", loss_rate=0.15)
        _run_traced_session(shaping=lossy)
        ledger = FrameLedger.from_tracer(tracer)
        statuses = ledger.by_status()
        assert "open" not in statuses and "unfinished" not in statuses
        assert statuses.get("complete", 0) > 0
        lossy_terminal = (
            statuses.get("uplink_dropped", 0)
            + statuses.get("pose_dropped", 0)
        )
        assert lossy_terminal > 0
        assert tracer.open_trace_count() == 0

    def test_stage_breakdown_and_fold_into(self, tracer, metrics):
        _run_traced_session(duration=3.0)
        ledger = FrameLedger.from_tracer(tracer)
        breakdown = ledger.stage_breakdown()
        assert "total" in breakdown
        for stage in ("uplink", "kernel", "downlink"):
            stats = breakdown[stage]
            assert stats["p50_ms"] <= stats["p95_ms"] <= stats["max_ms"]
            assert stats["count"] > 0
        ledger.fold_into(metrics)
        text = metrics.render_prometheus()
        assert "repro_frames_total_ms_bucket" in text
        assert 'trace_id="' in text  # exemplars survived the fold
        summary = ledger.summary_text()
        assert "uplink" in summary and "kernel" in summary


class TestFrameLedgerUnit:
    def _root(self, trace_id, span_id=1, status="complete", **attrs):
        base = {"name": "frame.lifecycle", "span_id": span_id,
                "parent_id": None, "trace_id": trace_id, "tid": "client-0",
                "attrs": {"client_id": 0, "frame": 7, "status": status,
                          **attrs},
                "sim_start_s": 1.0, "sim_dur_ms": 40.0}
        return base

    def _stage(self, trace_id, name, span_id, parent_id, dur_ms, **attrs):
        return {"name": name, "span_id": span_id, "parent_id": parent_id,
                "trace_id": trace_id, "tid": "sim", "attrs": dict(attrs),
                "sim_start_s": 1.0, "sim_dur_ms": dur_ms}

    def test_stage_mapping_and_linkage(self):
        spans = [
            self._root(10, span_id=1),
            self._stage(10, "net.frame", 2, 1, 12.0, attempts=2),
            self._stage(10, "server.admission", 3, 1, 0.1),
            self._stage(10, "gpu.kernel", 4, 3, 9.0, batch_id=4),
            self._stage(10, "net.pose", 5, 1, 8.0),
        ]
        ledger = FrameLedger.from_spans(spans)
        (record,) = ledger.records()
        assert record.complete and record.linked
        assert record.stage_ms("uplink") == pytest.approx(12.0)
        assert record.stage_ms("kernel") == pytest.approx(9.0)
        assert record.batch_id == 4
        assert record.attempts == 2

    def test_orphan_span_breaks_linkage(self):
        spans = [
            self._root(11, span_id=1),
            # Parent 99 never recorded: the causal chain is broken.
            self._stage(11, "gpu.kernel", 4, 99, 9.0),
        ]
        (record,) = FrameLedger.from_spans(spans).records()
        assert not record.linked

    def test_two_roots_break_linkage(self):
        spans = [self._root(12, span_id=1), self._root(12, span_id=2)]
        (record,) = FrameLedger.from_spans(spans).records()
        assert not record.linked

    def test_jsonl_round_trip_matches_live_ledger(self, tracer, tmp_path):
        _run_traced_session(duration=2.0)
        live = FrameLedger.from_tracer(tracer)
        path = tmp_path / "run.jsonl"
        tracer.export_jsonl(str(path))
        reloaded = FrameLedger.from_jsonl(str(path))
        assert len(reloaded.records()) == len(live.records())
        assert reloaded.by_status() == live.by_status()
        for a, b in zip(live.complete_frames(), reloaded.complete_frames()):
            assert a.trace_id == b.trace_id
            assert a.stages.keys() == b.stages.keys()
            assert a.total_ms == pytest.approx(b.total_ms)
            assert b.linked


class TestSloEngine:
    def _latency_spec(self, **kw):
        defaults = dict(name="lat", kind="latency", target=100.0,
                        description="p95 latency", percentile=0.95,
                        objective=0.99, window_s=10.0, min_count=3,
                        burn_alert=2.0)
        defaults.update(kw)
        return SloSpec(**defaults)

    def test_latency_breach_and_burn_rate(self):
        engine = SloEngine()
        engine.register(self._latency_spec())
        for i in range(10):
            engine.observe("lat", 200.0, t=float(i))  # all bad
        (status,) = engine.evaluate(t=10.0)
        assert status.breached
        assert status.value == pytest.approx(200.0)
        assert status.bad_fraction == pytest.approx(1.0)
        # All-bad traffic burns the 1% error budget 100x over.
        assert status.burn_rate == pytest.approx(100.0)

    def test_min_count_gates_judgement(self):
        engine = SloEngine()
        engine.register(self._latency_spec(min_count=5))
        engine.observe("lat", 500.0, t=0.0)
        (status,) = engine.evaluate(t=1.0)
        assert not status.breached and status.count == 1

    def test_window_prunes_old_samples(self):
        engine = SloEngine()
        engine.register(self._latency_spec(window_s=5.0, min_count=1))
        for i in range(5):
            engine.observe("lat", 500.0, t=float(i))  # old + bad
        for i in range(5):
            engine.observe("lat", 10.0, t=20.0 + i)   # recent + good
        (status,) = engine.evaluate(t=25.0)
        assert not status.breached
        assert status.count == 5  # the old breaching samples aged out

    def test_breach_recover_events_fire_on_edges(self):
        engine = SloEngine()
        engine.register(self._latency_spec(min_count=1, window_s=5.0))
        seen = []
        engine.subscribe(lambda event: seen.append(event.kind))
        for t in (0.0, 1.0, 2.0):
            engine.observe("lat", 500.0, t=t)
            engine.evaluate(t=t)
        for t in (8.0, 9.0):
            engine.observe("lat", 1.0, t=t)
            engine.evaluate(t=t)
        # One breach edge, one recover edge -- not one event per tick.
        assert seen == ["breach", "recover"]
        assert engine.breached_names() == []
        kinds = [e.kind for e in engine.events]
        assert kinds == ["breach", "recover"]

    def test_ratio_and_gauge_kinds(self):
        engine = SloEngine()
        engine.register(SloSpec(name="shed", kind="ratio", target=0.10,
                                description="shed rate", objective=0.95,
                                window_s=10.0, min_count=2))
        engine.register(SloSpec(name="ate", kind="gauge", target=0.5,
                                description="ATE", window_s=10.0,
                                min_count=1))
        for i in range(10):
            engine.observe("shed", 1.0 if i < 4 else 0.0, t=float(i))
        engine.observe("ate", 0.7, t=5.0)
        statuses = {s.spec.name: s for s in engine.evaluate(t=9.0)}
        assert statuses["shed"].value == pytest.approx(0.4)
        assert statuses["shed"].breached
        assert statuses["ate"].breached  # gauge: value > target suffices
        engine.observe("ate", 0.1, t=9.5)
        statuses = {s.spec.name: s for s in engine.evaluate(t=9.5)}
        assert not statuses["ate"].breached  # gauge judges the last value

    def test_unknown_metric_is_ignored(self):
        engine = SloEngine()
        engine.observe("nope", 1.0, t=0.0)  # must not raise
        assert engine.evaluate(t=1.0) == []

    def test_default_slos_register_and_render(self):
        engine = default_slos(SloEngine())
        names = {spec.name for spec in engine.specs()}
        assert {"frame.p95_ms", "frames.shed_rate", "tracking.ate_m"} <= names
        assert "frame.p95_ms" in engine.render_text()

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            SloSpec(name="x", kind="bogus", target=1.0, description="")
        with pytest.raises(ValueError):
            SloSpec(name="x", kind="latency", target=1.0, description="",
                    objective=1.5)


class TestPrometheusExposition:
    def test_counter_and_histogram_rendering(self, metrics):
        counter = metrics.counter("frames.shed", "shed frames")
        counter.inc(3)
        hist = metrics.histogram("frame.wall_ms", "frame wall time")
        hist.record(5.0, trace_id=777)
        hist.record(50.0, trace_id=888)
        text = metrics.render_prometheus()
        assert "# TYPE repro_frames_shed_total counter" in text
        assert "repro_frames_shed_total 3" in text
        assert "# TYPE repro_frame_wall_ms histogram" in text
        assert 'le="+Inf"' in text
        assert "repro_frame_wall_ms_count 2" in text
        assert 'trace_id="777"' in text or 'trace_id="888"' in text
        # Exposition must end with a trailing newline for scrapers.
        assert text.endswith("\n")

    def test_export_to_file(self, metrics, tmp_path):
        metrics.counter("a.b", "c").inc()
        out = tmp_path / "metrics.prom"
        metrics.export_prometheus(str(out))
        assert "repro_a_b_total 1" in out.read_text()

    def test_exemplars_optional(self, metrics):
        hist = metrics.histogram("h", "h")
        hist.record(1.0, trace_id=42)
        assert 'trace_id="42"' not in metrics.render_prometheus(
            exemplars=False
        )


class TestExportRoundTrips:
    def test_chrome_export_is_valid_json_with_pid_split(self, tracer,
                                                        tmp_path):
        ctx = tracer.open_trace("frame.lifecycle", frame=0)
        with tracer.child_span(ctx, "server.frame"):
            pass
        tracer.sim_event("net.frame", 10.0, start_s=0.5, ctx=ctx)
        tracer.close_trace(ctx, status="complete")
        out = tmp_path / "trace.json"
        tracer.export_chrome(str(out))
        doc = json.loads(out.read_text())
        events = doc["traceEvents"]
        pids = {e["pid"] for e in events if e.get("ph") == "X"}
        assert pids == {1, 2}, "wall and sim pseudo-processes both present"
        names = {e["name"] for e in events if e.get("ph") == "M"}
        assert "process_name" in names
        lifecycle = [e for e in events
                     if e.get("name") == "frame.lifecycle"]
        assert any(e["args"].get("trace_id") == ctx.trace_id
                   for e in lifecycle)

    def test_jsonl_reload_equals_export(self, tracer, tmp_path):
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        path = tmp_path / "spans.jsonl"
        n = tracer.export_jsonl(str(path))
        rows = load_jsonl(str(path))
        assert len(rows) == n == len(tracer.spans)
        by_name = {r["name"]: r for r in rows}
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
        assert set(by_name) == set(tracer.span_names())

    def test_streaming_equals_batch_export(self, tracer, tmp_path):
        stream_path = tmp_path / "stream.jsonl"
        tracer.stream_to(str(stream_path))
        ctx = tracer.open_trace("frame.lifecycle", frame=1)
        with tracer.child_span(ctx, "stage"):
            pass
        tracer.close_trace(ctx, status="complete")
        n = tracer.close_stream()
        batch_path = tmp_path / "batch.jsonl"
        tracer.export_jsonl(str(batch_path))
        streamed = load_jsonl(str(stream_path))
        batch = load_jsonl(str(batch_path))
        assert n == len(streamed) == len(batch)
        assert streamed == batch

    def test_partial_stream_survives_missing_close(self, tracer, tmp_path):
        """Crash safety: spans already closed are on disk even when the
        run never reaches close_stream()."""
        stream_path = tmp_path / "partial.jsonl"
        tracer.stream_to(str(stream_path))
        with tracer.span("finished"):
            pass
        ctx = tracer.open_trace("frame.lifecycle", frame=0)  # never closed
        tracer.flush_stream()
        rows = load_jsonl(str(stream_path))
        assert [r["name"] for r in rows] == ["finished"]
        tracer.close_trace(ctx, status="complete")

    def test_capacity_cap_counts_drops(self, tracer, metrics):
        tracer.configure(enabled=True, capacity=3)
        for i in range(8):
            with tracer.span(f"s{i}"):
                pass
        assert len(tracer.spans) == 3
        assert tracer.dropped == 5
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["trace.spans_dropped"] == 5

    def test_capacity_cap_still_streams(self, tracer, tmp_path):
        tracer.configure(enabled=True, capacity=2)
        stream_path = tmp_path / "capped.jsonl"
        tracer.stream_to(str(stream_path))
        for i in range(6):
            with tracer.span(f"s{i}"):
                pass
        tracer.close_stream()
        assert len(tracer.spans) == 2            # RAM stays bounded...
        assert len(load_jsonl(str(stream_path))) == 6  # ...disk has all


class TestReportAndCli:
    def test_report_html_renders_waterfalls(self, tracer, tmp_path):
        _run_traced_session(duration=2.0)
        ledger = FrameLedger.from_tracer(tracer)
        html = render_report_html(ledger, title="test run")
        assert "<html" in html and "test run" in html
        for stage in ("uplink", "kernel", "downlink"):
            assert stage in html

    def test_cli_report_subcommand(self, tracer, tmp_path, capsys):
        from repro.cli import main
        _run_traced_session(duration=2.0)
        jsonl = tmp_path / "run.jsonl"
        tracer.export_jsonl(str(jsonl))
        html = tmp_path / "report.html"
        rc = main(["report", str(jsonl), "--html", str(html)])
        assert rc in (0, None)
        out = capsys.readouterr().out
        assert "causally linked frame trees" in out
        assert html.exists() and "uplink" in html.read_text()

    def test_cli_report_empty_trace_fails(self, tmp_path):
        from repro.cli import main
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["report", str(empty)]) == 1
