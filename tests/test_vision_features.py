"""Tests for BRIEF descriptors, ORB extraction and matching."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import SE3
from repro.vision import (
    DescriptorBank,
    FeatureOracle,
    Image,
    ImagePyramid,
    OrbExtractor,
    OrbExtractorConfig,
    PinholeCamera,
    StereoRig,
    hamming_distance,
    hamming_distance_matrix,
    match_descriptors,
    perturb_descriptor,
    random_descriptor,
    render_frame,
    search_by_projection_scalar,
    search_by_projection_vectorized,
)
from repro.vision.brief import DESCRIPTOR_BYTES, compute_descriptor
from repro.vision.fast import Keypoint


class TestBrief:
    def test_descriptor_shape(self):
        rng = np.random.default_rng(0)
        img = rng.integers(0, 256, size=(64, 64), dtype=np.uint8)
        desc = compute_descriptor(img, Keypoint(32, 32, 1.0))
        assert desc is not None and desc.shape == (DESCRIPTOR_BYTES,)

    def test_descriptor_none_near_border(self):
        img = np.zeros((64, 64), dtype=np.uint8)
        assert compute_descriptor(img, Keypoint(2, 2, 1.0)) is None

    def test_hamming_identity_is_zero(self):
        rng = np.random.default_rng(1)
        d = random_descriptor(rng)
        assert hamming_distance(d, d) == 0

    def test_hamming_complement_is_all_bits(self):
        d = np.zeros(DESCRIPTOR_BYTES, dtype=np.uint8)
        assert hamming_distance(d, ~d) == 256

    def test_perturb_flips_exact_bits(self):
        rng = np.random.default_rng(2)
        d = random_descriptor(rng)
        assert hamming_distance(d, perturb_descriptor(d, rng, 12)) == 12

    def test_matrix_matches_pairwise(self):
        rng = np.random.default_rng(3)
        a = np.stack([random_descriptor(rng) for _ in range(4)])
        b = np.stack([random_descriptor(rng) for _ in range(5)])
        mat = hamming_distance_matrix(a, b)
        for i in range(4):
            for j in range(5):
                assert mat[i, j] == hamming_distance(a[i], b[j])

    @given(st.integers(min_value=0, max_value=255))
    @settings(max_examples=20, deadline=None)
    def test_hamming_symmetry(self, seed):
        rng = np.random.default_rng(seed)
        a, b = random_descriptor(rng), random_descriptor(rng)
        assert hamming_distance(a, b) == hamming_distance(b, a)

    def test_descriptor_stable_across_identical_patches(self):
        rng = np.random.default_rng(4)
        patch = rng.integers(0, 256, size=(64, 64), dtype=np.uint8)
        d1 = compute_descriptor(patch, Keypoint(30, 30, 1.0))
        d2 = compute_descriptor(patch.copy(), Keypoint(30, 30, 1.0))
        assert hamming_distance(d1, d2) == 0


class TestOrbExtractor:
    def _scene(self):
        cam = PinholeCamera.ideal(160, 120)
        rng = np.random.default_rng(5)
        pts = np.column_stack(
            [rng.uniform(-2, 2, 40), rng.uniform(-1.5, 1.5, 40), rng.uniform(4, 8, 40)]
        )
        ids = np.arange(40)
        return render_frame(pts, ids, cam, SE3.identity(), rng=rng), pts, ids, cam

    def test_extracts_features_on_synthetic_frame(self):
        img, _, _, _ = self._scene()
        feats = OrbExtractor(OrbExtractorConfig(n_features=100, n_levels=2)).extract(img)
        assert len(feats) > 10
        assert feats.descriptors.shape == (len(feats), DESCRIPTOR_BYTES)

    def test_respects_feature_budget(self):
        img, _, _, _ = self._scene()
        feats = OrbExtractor(OrbExtractorConfig(n_features=20, n_levels=2)).extract(img)
        assert len(feats) <= 20

    def test_backends_agree(self):
        img, _, _, _ = self._scene()
        cfg = OrbExtractorConfig(n_features=60, n_levels=2)
        a = OrbExtractor(cfg, backend="scalar").extract(img)
        b = OrbExtractor(cfg, backend="vectorized").extract(img)
        assert len(a) == len(b)
        assert np.allclose(a.uv, b.uv)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            OrbExtractor(backend="tpu")

    def test_features_near_landmarks(self):
        img, pts, ids, cam = self._scene()
        feats = OrbExtractor(OrbExtractorConfig(n_features=120, n_levels=1)).extract(img)
        uv_true, _, valid = cam.project_world(pts, SE3.identity())
        uv_true = uv_true[valid]
        hits = 0
        for kp_uv in feats.uv:
            if np.min(np.linalg.norm(uv_true - kp_uv, axis=1)) < 5.0:
                hits += 1
        assert hits >= len(feats) * 0.5


class TestPyramid:
    def test_level_sizes_shrink(self):
        img = Image(np.zeros((120, 160), dtype=np.uint8))
        pyr = ImagePyramid(img, n_levels=4, scale_factor=1.5)
        sizes = [lvl.shape[0] for lvl in pyr.levels]
        assert sizes == sorted(sizes, reverse=True)

    def test_to_base_coords(self):
        img = Image(np.zeros((120, 160), dtype=np.uint8))
        pyr = ImagePyramid(img, n_levels=3, scale_factor=2.0)
        assert np.allclose(pyr.to_base_coords(np.array([10.0, 5.0]), 1), [20.0, 10.0])

    def test_invalid_args(self):
        img = Image(np.zeros((32, 32), dtype=np.uint8))
        with pytest.raises(ValueError):
            ImagePyramid(img, n_levels=0)
        with pytest.raises(ValueError):
            ImagePyramid(img, scale_factor=0.9)


class TestMatching:
    def _descriptor_sets(self, n=30, flips=6):
        rng = np.random.default_rng(6)
        base = np.stack([random_descriptor(rng) for _ in range(n)])
        noisy = np.stack([perturb_descriptor(d, rng, flips) for d in base])
        return base, noisy

    def test_match_recovers_identity_permutation(self):
        base, noisy = self._descriptor_sets()
        matches = match_descriptors(base, noisy)
        assert len(matches) >= 25
        for m in matches:
            assert m.query_idx == m.train_idx

    def test_empty_inputs(self):
        base, _ = self._descriptor_sets(5)
        assert match_descriptors(base, np.zeros((0, DESCRIPTOR_BYTES), np.uint8)) == []
        assert match_descriptors(np.zeros((0, DESCRIPTOR_BYTES), np.uint8), base) == []

    def test_max_distance_filters(self):
        rng = np.random.default_rng(7)
        a = np.stack([random_descriptor(rng) for _ in range(10)])
        b = np.stack([random_descriptor(rng) for _ in range(10)])
        # Random 256-bit strings differ by ~128 bits on average.
        assert match_descriptors(a, b, max_distance=40) == []

    def test_search_by_projection_variants_agree(self):
        rng = np.random.default_rng(8)
        n = 40
        base = np.stack([random_descriptor(rng) for _ in range(n)])
        proj_uv = rng.uniform(20, 200, size=(n, 2))
        frame_uv = proj_uv + rng.normal(scale=2.0, size=(n, 2))
        frame_desc = np.stack([perturb_descriptor(d, rng, 5) for d in base])
        scalar = search_by_projection_scalar(proj_uv, base, frame_uv, frame_desc)
        vector = search_by_projection_vectorized(proj_uv, base, frame_uv, frame_desc)
        assert [(m.query_idx, m.train_idx, m.distance) for m in scalar] == [
            (m.query_idx, m.train_idx, m.distance) for m in vector
        ]
        assert len(scalar) >= n * 0.8

    def test_search_radius_enforced(self):
        rng = np.random.default_rng(9)
        base = np.stack([random_descriptor(rng)])
        proj_uv = np.array([[50.0, 50.0]])
        frame_uv = np.array([[80.0, 80.0]])  # 42 px away
        out = search_by_projection_vectorized(proj_uv, base, frame_uv, base, radius=8.0)
        assert out == []


class TestFeatureOracle:
    def _setup(self):
        cam = PinholeCamera.ideal(320, 240)
        rng = np.random.default_rng(10)
        pts = np.column_stack(
            [rng.uniform(-3, 3, 200), rng.uniform(-2, 2, 200), rng.uniform(3, 10, 200)]
        )
        return cam, pts, np.arange(200)

    def test_observations_project_correctly(self):
        cam, pts, ids = self._setup()
        oracle = FeatureOracle(cam, pixel_sigma=0.0, dropout=0.0, seed=1)
        obs = oracle.observe(pts, ids, SE3.identity())
        assert len(obs) > 50
        for o in obs[:20]:
            uv, _, valid = cam.project_world(pts[o.landmark_id][None], SE3.identity())
            assert valid[0]
            assert np.allclose(uv[0], o.uv, atol=1e-9)

    def test_descriptors_match_bank(self):
        cam, pts, ids = self._setup()
        bank = DescriptorBank()
        oracle = FeatureOracle(cam, descriptor_flip_bits=4, dropout=0.0,
                               descriptor_bank=bank, seed=2)
        obs = oracle.observe(pts, ids, SE3.identity())
        for o in obs[:20]:
            assert hamming_distance(o.descriptor, bank.descriptor(o.landmark_id)) == 4

    def test_max_features_uniform_subsample(self):
        cam, pts, ids = self._setup()
        oracle = FeatureOracle(cam, max_features=30, dropout=0.0, seed=3)
        obs = oracle.observe(pts, ids, SE3.identity())
        assert len(obs) <= 30
        # Subsampling is uniform over the visible set, not depth-biased
        # (depth-ordered selection degenerates to coplanar feature sets).
        depths = [o.depth for o in obs]
        full = oracle.observe(pts, ids, SE3.identity())
        assert np.mean(depths) > 0

    def test_stereo_right_u(self):
        cam, pts, ids = self._setup()
        rig = StereoRig(cam, baseline=0.11)
        oracle = FeatureOracle(cam, stereo=rig, pixel_sigma=0.0, dropout=0.0,
                               depth_sigma_rel=0.0, seed=4)
        obs = oracle.observe(pts, ids, SE3.identity())
        for o in obs[:20]:
            expected = o.uv[0] - rig.bf / o.depth
            assert o.right_u == pytest.approx(expected, abs=1e-6)

    def test_empty_world(self):
        cam, _, _ = self._setup()
        oracle = FeatureOracle(cam)
        assert oracle.observe(np.zeros((0, 3)), np.zeros(0), SE3.identity()) == []


class TestCamera:
    def test_project_unproject_roundtrip(self):
        cam = PinholeCamera.ideal()
        pts = np.array([[0.5, -0.2, 3.0], [1.0, 1.0, 10.0]])
        uv, valid = cam.project(pts)
        assert valid.all()
        back = cam.unproject(uv, pts[:, 2])
        assert np.allclose(back, pts, atol=1e-9)

    def test_behind_camera_invalid(self):
        cam = PinholeCamera.ideal()
        _, valid = cam.project(np.array([[0.0, 0.0, -1.0]]))
        assert not valid[0]

    def test_out_of_frame_invalid(self):
        cam = PinholeCamera.ideal()
        _, valid = cam.project(np.array([[100.0, 0.0, 1.0]]))
        assert not valid[0]

    def test_bearing_unit_norm(self):
        cam = PinholeCamera.ideal()
        b = cam.bearing(np.array([[10.0, 20.0], [300.0, 200.0]]))
        assert np.allclose(np.linalg.norm(b, axis=1), 1.0)

    def test_stereo_depth_disparity_roundtrip(self):
        rig = StereoRig(PinholeCamera.ideal(), baseline=0.1)
        depth = np.array([1.0, 5.0, 20.0])
        assert np.allclose(rig.depth_from_disparity(rig.disparity(depth)), depth)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            PinholeCamera(fx=-1, fy=1, cx=0, cy=0, width=10, height=10)
        with pytest.raises(ValueError):
            StereoRig(PinholeCamera.ideal(), baseline=0.0)
