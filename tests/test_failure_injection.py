"""Failure-injection tests: the system under hostile conditions.

A multi-user AR system lives on unreliable wireless links with clients
that come and go.  These tests inject packet loss, extreme delay,
observation outages and merge failures, and assert the system degrades
the way the architecture promises (IMU bridges gaps, merges retry,
nothing corrupts).
"""

import pytest

from repro.core import ClientScenario, SlamShareConfig, SlamShareSession
from repro.datasets import euroc_dataset
from repro.net import ShapingProfile


def _session(shaping=None, durations=(12.0, 9.0), ate_interval=None):
    mh04 = euroc_dataset("MH04", duration=durations[0], rate=10.0)
    mh05 = euroc_dataset("MH05", duration=durations[1], rate=10.0)
    config = SlamShareConfig(camera_fps=10.0, render_video_frames=False)
    if shaping is not None:
        config.shaping = shaping
    return SlamShareSession(
        [
            ClientScenario(0, mh04),
            ClientScenario(1, mh05, start_time=3.0, oracle_seed=9,
                           imu_seed=13),
        ],
        config,
        ate_sample_interval=ate_interval,
    )


class TestLossyLinks:
    def test_session_survives_packet_loss(self):
        """10% loss drops some frames and poses; IMU bridges the gaps
        and accuracy stays in the paper's regime."""
        lossy = ShapingProfile("lossy wifi", loss_rate=0.10)
        result = _session(shaping=lossy).run()
        for cid in result.outcomes:
            ate = result.client_ate(cid)
            assert ate.rmse < 0.15
        # Loss is actually happening.
        session_links = [
            outcome for outcome in result.outcomes.values()
        ]
        total_frames = sum(o.frames_processed for o in session_links)
        expected = sum(
            len(range(0, o.scenario.dataset.n_frames, 1))
            for o in session_links
        )
        assert total_frames < expected  # some uplink frames were dropped

    def test_heavy_loss_still_no_corruption(self):
        lossy = ShapingProfile("terrible link", loss_rate=0.35)
        result = _session(shaping=lossy).run()
        # The run completes and the global map is structurally sound.
        gmap = result.server.global_map
        for kf in gmap.keyframes.values():
            for pid in kf.observed_point_ids():
                assert int(pid) in gmap.mappoints or int(pid) < 0


class TestExtremeDelay:
    def test_one_second_rtt(self):
        """Paper Table 2's worst case: a full second of RTT."""
        slow = ShapingProfile("1s delay", delay_s=0.5)  # 1 s RTT
        result = _session(shaping=slow).run()
        for cid in result.outcomes:
            # Server-side map still accurate; display degrades gracefully.
            assert result.client_ate(cid).rmse < 0.10
            display = result.client_ate(cid, use_display=True).rmse
            assert display < 0.5


class TestObservationOutage:
    def test_client_blackout_recovers_via_relocalization(self):
        """A client's camera is covered mid-session; when it uncovers at
        a mapped location, the server process relocalizes it."""
        session = _session()
        # Inject: drop observations for client 0 in a time window by
        # wrapping the oracle.
        original_process = session._process_frame
        blackout = (5.0, 7.0)

        def patched(state, frame_idx, dataset_ts):
            scenario = state["scenario"]
            if (
                scenario.client_id == 0
                and blackout[0] <= dataset_ts <= blackout[1]
            ):
                real_observe = state["oracle"].observe
                state["oracle"].observe = lambda *a, **k: []
                try:
                    original_process(state, frame_idx, dataset_ts)
                finally:
                    state["oracle"].observe = real_observe
            else:
                original_process(state, frame_idx, dataset_ts)

        session._process_frame = patched
        result = session.run()
        outcome = result.outcomes[0]
        assert outcome.frames_lost > 0  # blackout hurt
        process = result.server.processes[0]
        # Tracking resumed (relocalization or IMU-bridged reacquisition).
        traj = result.server.client_trajectory(0)
        assert traj.timestamps[-1] > blackout[1]
        assert result.client_ate(0).rmse < 0.15


class TestClientChurn:
    def test_disconnect_rejoin_relocalizes_and_stays_accurate(self):
        """A client drops off mid-session and rejoins 2.5 s later: the
        server parks and resumes its process, the first post-rejoin
        upload bridges the window with accumulated IMU, and accuracy
        stays in the paper's regime (acceptance: ATE RMSE < 0.15)."""
        session = _session()
        session.clock.schedule_at(5.0, lambda: session.disconnect_client(0))
        session.clock.schedule_at(7.5, lambda: session.rejoin_client(0))
        result = session.run()
        outcome = result.outcomes[0]
        assert outcome.disconnects == 1
        assert outcome.rejoins == 1
        assert outcome.frames_offline > 0
        # The rejoin delivery bridged the offline window's IMU interval.
        assert outcome.frames_recovered >= 1
        # Tracking resumed past the outage (IMU prior or relocalization).
        traj = result.server.client_trajectory(0)
        assert traj.timestamps[-1] > 7.5
        for cid in result.outcomes:
            assert result.client_ate(cid).rmse < 0.15

    def test_offline_window_scenario_field(self):
        """Declarative churn via ClientScenario.offline_windows."""
        mh04 = euroc_dataset("MH04", duration=12.0, rate=10.0)
        mh05 = euroc_dataset("MH05", duration=9.0, rate=10.0)
        config = SlamShareConfig(camera_fps=10.0, render_video_frames=False)
        session = SlamShareSession(
            [
                ClientScenario(0, mh04, offline_windows=((5.0, 7.0),)),
                ClientScenario(1, mh05, start_time=3.0, oracle_seed=9,
                               imu_seed=13),
            ],
            config,
        )
        result = session.run()
        outcome = result.outcomes[0]
        assert outcome.disconnects == 1 and outcome.rejoins == 1
        assert result.client_ate(0).rmse < 0.15

    def test_churn_under_heavy_loss_no_corruption(self):
        """Disconnect/rejoin on a 35% lossy link: the session completes,
        drops are accounted per client, lost IMU intervals accumulate
        into later uploads, and the shared map stays structurally sound."""
        lossy = ShapingProfile("terrible link", loss_rate=0.35)
        session = _session(shaping=lossy)
        session.clock.schedule_at(5.0, lambda: session.disconnect_client(0))
        session.clock.schedule_at(7.5, lambda: session.rejoin_client(0))
        result = session.run()
        outcome = result.outcomes[0]
        assert outcome.uplink_drops > 0
        assert outcome.frames_recovered > 0
        gmap = result.server.global_map
        for kf in gmap.keyframes.values():
            for pid in kf.observed_point_ids():
                assert int(pid) in gmap.mappoints or int(pid) < 0

    def test_double_disconnect_and_rejoin_are_idempotent(self):
        session = _session()
        session.clock.schedule_at(5.0, lambda: session.disconnect_client(0))
        session.clock.schedule_at(5.1, lambda: session.disconnect_client(0))
        session.clock.schedule_at(7.0, lambda: session.rejoin_client(0))
        session.clock.schedule_at(7.1, lambda: session.rejoin_client(0))
        result = session.run()
        outcome = result.outcomes[0]
        assert outcome.disconnects == 1 and outcome.rejoins == 1

    def test_unknown_client_rejected(self):
        session = _session()
        with pytest.raises(ValueError):
            session.disconnect_client(99)


class TestUplinkDropAccounting:
    def test_per_client_drop_counts_match_link_stats(self):
        """Satellite: session traffic rides the Endpoint layer, so the
        per-client uplink drop counts in ClientOutcome must agree with
        the link-level loss accounting."""
        lossy = ShapingProfile("lossy wifi", loss_rate=0.10)
        session = _session(shaping=lossy)
        result = session.run()
        for cid, outcome in result.outcomes.items():
            link = session._links[cid]
            device_ep, _ = session._endpoints[cid]
            assert outcome.uplink_drops == link.uplink.stats.messages_dropped
            assert outcome.uplink_drops == len(device_ep.dropped)
            assert outcome.uplink_drops > 0
            # Frames either processed or dropped; none silently vanish.
            uploaded = len(device_ep.sent)
            assert outcome.frames_processed + outcome.uplink_drops == uploaded


class TestMergeRobustness:
    def test_failed_merge_rolls_back_and_retries(self):
        """A client starts in un-mappable isolation (no overlap yet), so
        early merge attempts fail; the rollback must leave both maps
        clean and a later attempt must succeed."""
        from repro.slam import MergerConfig

        mh04 = euroc_dataset("MH04", duration=12.0, rate=10.0)
        mh05 = euroc_dataset("MH05", duration=9.0, rate=10.0)
        config = SlamShareConfig(camera_fps=10.0, render_video_frames=False)
        # Impossibly strict first: all attempts fail.
        config.merger = MergerConfig(min_correspondences=100000)
        session = SlamShareSession(
            [
                ClientScenario(0, mh04),
                ClientScenario(1, mh05, start_time=3.0, oracle_seed=9,
                               imu_seed=13),
            ],
            config,
        )
        result = session.run()
        assert not result.merges  # nothing merged under the strict config
        server = result.server
        # Rollback cleanliness: no client-1 debris in the global map.
        assert not server.global_map.keyframes_of_client(1)
        assert not [
            p for p in server.global_map.mappoints.values() if p.client_id == 1
        ]
        # The client's own map must still be intact and mergeable.
        process = server.processes[1]
        assert process.system.map.n_keyframes > 0
        from repro.slam import MapMerger

        merger = MapMerger(
            server.global_map, server.global_database, mh04.camera,
            MergerConfig(),  # sane thresholds now
        )
        retry = merger.merge_maps(process.system.map, client_id=1)
        assert retry.success

    def test_disjoint_client_never_merges_but_tracks(self):
        """A client in a different room keeps its own map and keeps
        tracking; the session must not force a bogus merge."""
        mh04 = euroc_dataset("MH04", duration=10.0, rate=10.0)
        v202 = euroc_dataset("V202", duration=8.0, rate=10.0)
        config = SlamShareConfig(camera_fps=10.0, render_video_frames=False)
        session = SlamShareSession(
            [
                ClientScenario(0, mh04),
                ClientScenario(1, v202, start_time=2.0, oracle_seed=9,
                               imu_seed=13),
            ],
            config,
        )
        result = session.run()
        assert not result.merges
        # Both clients track fine in their own frames.
        for cid in (0, 1):
            assert result.client_ate(cid).rmse < 0.10
