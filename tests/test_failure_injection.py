"""Failure-injection tests: the system under hostile conditions.

A multi-user AR system lives on unreliable wireless links with clients
that come and go.  These tests inject packet loss, extreme delay,
observation outages and merge failures, and assert the system degrades
the way the architecture promises (IMU bridges gaps, merges retry,
nothing corrupts).
"""

import pytest

from repro.core import ClientScenario, SlamShareConfig, SlamShareSession
from repro.datasets import euroc_dataset
from repro.net import ShapingProfile


def _session(shaping=None, durations=(12.0, 9.0), ate_interval=None):
    mh04 = euroc_dataset("MH04", duration=durations[0], rate=10.0)
    mh05 = euroc_dataset("MH05", duration=durations[1], rate=10.0)
    config = SlamShareConfig(camera_fps=10.0, render_video_frames=False)
    if shaping is not None:
        config.shaping = shaping
    return SlamShareSession(
        [
            ClientScenario(0, mh04),
            ClientScenario(1, mh05, start_time=3.0, oracle_seed=9,
                           imu_seed=13),
        ],
        config,
        ate_sample_interval=ate_interval,
    )


class TestLossyLinks:
    def test_session_survives_packet_loss(self):
        """10% loss drops some frames and poses; IMU bridges the gaps
        and accuracy stays in the paper's regime."""
        lossy = ShapingProfile("lossy wifi", loss_rate=0.10)
        result = _session(shaping=lossy).run()
        for cid in result.outcomes:
            ate = result.client_ate(cid)
            assert ate.rmse < 0.15
        # Loss is actually happening.
        session_links = [
            outcome for outcome in result.outcomes.values()
        ]
        total_frames = sum(o.frames_processed for o in session_links)
        expected = sum(
            len(range(0, o.scenario.dataset.n_frames, 1))
            for o in session_links
        )
        assert total_frames < expected  # some uplink frames were dropped

    def test_heavy_loss_still_no_corruption(self):
        lossy = ShapingProfile("terrible link", loss_rate=0.35)
        result = _session(shaping=lossy).run()
        # The run completes and the global map is structurally sound.
        gmap = result.server.global_map
        for kf in gmap.keyframes.values():
            for pid in kf.observed_point_ids():
                assert int(pid) in gmap.mappoints or int(pid) < 0


class TestExtremeDelay:
    def test_one_second_rtt(self):
        """Paper Table 2's worst case: a full second of RTT."""
        slow = ShapingProfile("1s delay", delay_s=0.5)  # 1 s RTT
        result = _session(shaping=slow).run()
        for cid in result.outcomes:
            # Server-side map still accurate; display degrades gracefully.
            assert result.client_ate(cid).rmse < 0.10
            display = result.client_ate(cid, use_display=True).rmse
            assert display < 0.5


class TestObservationOutage:
    def test_client_blackout_recovers_via_relocalization(self):
        """A client's camera is covered mid-session; when it uncovers at
        a mapped location, the server process relocalizes it."""
        session = _session()
        # Inject: drop observations for client 0 in a time window by
        # wrapping the oracle.
        original_process = session._process_frame
        blackout = (5.0, 7.0)

        def patched(state, frame_idx, dataset_ts):
            scenario = state["scenario"]
            if (
                scenario.client_id == 0
                and blackout[0] <= dataset_ts <= blackout[1]
            ):
                real_observe = state["oracle"].observe
                state["oracle"].observe = lambda *a, **k: []
                try:
                    original_process(state, frame_idx, dataset_ts)
                finally:
                    state["oracle"].observe = real_observe
            else:
                original_process(state, frame_idx, dataset_ts)

        session._process_frame = patched
        result = session.run()
        outcome = result.outcomes[0]
        assert outcome.frames_lost > 0  # blackout hurt
        process = result.server.processes[0]
        # Tracking resumed (relocalization or IMU-bridged reacquisition).
        traj = result.server.client_trajectory(0)
        assert traj.timestamps[-1] > blackout[1]
        assert result.client_ate(0).rmse < 0.15


class TestClientChurn:
    def test_disconnect_rejoin_relocalizes_and_stays_accurate(self):
        """A client drops off mid-session and rejoins 2.5 s later: the
        server parks and resumes its process, the first post-rejoin
        upload bridges the window with accumulated IMU, and accuracy
        stays in the paper's regime (acceptance: ATE RMSE < 0.15)."""
        session = _session()
        session.clock.schedule_at(5.0, lambda: session.disconnect_client(0))
        session.clock.schedule_at(7.5, lambda: session.rejoin_client(0))
        result = session.run()
        outcome = result.outcomes[0]
        assert outcome.disconnects == 1
        assert outcome.rejoins == 1
        assert outcome.frames_offline > 0
        # The rejoin delivery bridged the offline window's IMU interval.
        assert outcome.frames_recovered >= 1
        # Tracking resumed past the outage (IMU prior or relocalization).
        traj = result.server.client_trajectory(0)
        assert traj.timestamps[-1] > 7.5
        for cid in result.outcomes:
            assert result.client_ate(cid).rmse < 0.15

    def test_offline_window_scenario_field(self):
        """Declarative churn via ClientScenario.offline_windows."""
        mh04 = euroc_dataset("MH04", duration=12.0, rate=10.0)
        mh05 = euroc_dataset("MH05", duration=9.0, rate=10.0)
        config = SlamShareConfig(camera_fps=10.0, render_video_frames=False)
        session = SlamShareSession(
            [
                ClientScenario(0, mh04, offline_windows=((5.0, 7.0),)),
                ClientScenario(1, mh05, start_time=3.0, oracle_seed=9,
                               imu_seed=13),
            ],
            config,
        )
        result = session.run()
        outcome = result.outcomes[0]
        assert outcome.disconnects == 1 and outcome.rejoins == 1
        assert result.client_ate(0).rmse < 0.15

    def test_churn_under_heavy_loss_no_corruption(self):
        """Disconnect/rejoin on a 35% lossy link: the session completes,
        drops are accounted per client, lost IMU intervals accumulate
        into later uploads, and the shared map stays structurally sound."""
        lossy = ShapingProfile("terrible link", loss_rate=0.35)
        session = _session(shaping=lossy)
        session.clock.schedule_at(5.0, lambda: session.disconnect_client(0))
        session.clock.schedule_at(7.5, lambda: session.rejoin_client(0))
        result = session.run()
        outcome = result.outcomes[0]
        assert outcome.uplink_drops > 0
        assert outcome.frames_recovered > 0
        gmap = result.server.global_map
        for kf in gmap.keyframes.values():
            for pid in kf.observed_point_ids():
                assert int(pid) in gmap.mappoints or int(pid) < 0

    def test_double_disconnect_and_rejoin_are_idempotent(self):
        session = _session()
        session.clock.schedule_at(5.0, lambda: session.disconnect_client(0))
        session.clock.schedule_at(5.1, lambda: session.disconnect_client(0))
        session.clock.schedule_at(7.0, lambda: session.rejoin_client(0))
        session.clock.schedule_at(7.1, lambda: session.rejoin_client(0))
        result = session.run()
        outcome = result.outcomes[0]
        assert outcome.disconnects == 1 and outcome.rejoins == 1

    def test_unknown_client_rejected(self):
        session = _session()
        with pytest.raises(ValueError):
            session.disconnect_client(99)


class TestUplinkDropAccounting:
    def test_per_client_drop_counts_match_link_stats(self):
        """Satellite: session traffic rides the Endpoint layer, so the
        per-client uplink drop counts in ClientOutcome must agree with
        the link-level loss accounting."""
        lossy = ShapingProfile("lossy wifi", loss_rate=0.10)
        session = _session(shaping=lossy)
        result = session.run()
        for cid, outcome in result.outcomes.items():
            link = session._links[cid]
            device_ep, _ = session._endpoints[cid]
            assert outcome.uplink_drops == link.uplink.stats.messages_dropped
            assert outcome.uplink_drops == len(device_ep.dropped)
            assert outcome.uplink_drops > 0
            # Frames either processed or dropped; none silently vanish.
            uploaded = len(device_ep.sent)
            assert outcome.frames_processed + outcome.uplink_drops == uploaded


class TestMergeRobustness:
    def test_failed_merge_rolls_back_and_retries(self):
        """A client starts in un-mappable isolation (no overlap yet), so
        early merge attempts fail; the rollback must leave both maps
        clean and a later attempt must succeed."""
        from repro.slam import MergerConfig

        mh04 = euroc_dataset("MH04", duration=12.0, rate=10.0)
        mh05 = euroc_dataset("MH05", duration=9.0, rate=10.0)
        config = SlamShareConfig(camera_fps=10.0, render_video_frames=False)
        # Impossibly strict first: all attempts fail.
        config.merger = MergerConfig(min_correspondences=100000)
        session = SlamShareSession(
            [
                ClientScenario(0, mh04),
                ClientScenario(1, mh05, start_time=3.0, oracle_seed=9,
                               imu_seed=13),
            ],
            config,
        )
        result = session.run()
        assert not result.merges  # nothing merged under the strict config
        server = result.server
        # Rollback cleanliness: no client-1 debris in the global map.
        assert not server.global_map.keyframes_of_client(1)
        assert not [
            p for p in server.global_map.mappoints.values() if p.client_id == 1
        ]
        # The client's own map must still be intact and mergeable.
        process = server.processes[1]
        assert process.system.map.n_keyframes > 0
        from repro.slam import MapMerger

        merger = MapMerger(
            server.global_map, server.global_database, mh04.camera,
            MergerConfig(),  # sane thresholds now
        )
        retry = merger.merge_maps(process.system.map, client_id=1)
        assert retry.success

    def test_disjoint_client_never_merges_but_tracks(self):
        """A client in a different room keeps its own map and keeps
        tracking; the session must not force a bogus merge."""
        mh04 = euroc_dataset("MH04", duration=10.0, rate=10.0)
        v202 = euroc_dataset("V202", duration=8.0, rate=10.0)
        config = SlamShareConfig(camera_fps=10.0, render_video_frames=False)
        session = SlamShareSession(
            [
                ClientScenario(0, mh04),
                ClientScenario(1, v202, start_time=2.0, oracle_seed=9,
                               imu_seed=13),
            ],
            config,
        )
        result = session.run()
        assert not result.merges
        # Both clients track fine in their own frames.
        for cid in (0, 1):
            assert result.client_ate(cid).rmse < 0.10


class TestOffloadUnderChurn:
    """Adaptive offloading on hostile links: the handoff machinery must
    degrade exactly like the rest of the transport — bounded by the
    cooldown, aborting cleanly on dead links, and never losing the IMU
    anchor across migrations."""

    def _adaptive_session(self, duration=12.0, shaping=None,
                          policy="adaptive"):
        from repro.core import ClientScenario as CS
        from repro.gpu.device import CpuCostModel

        dataset = euroc_dataset("MH04", duration=duration, rate=10.0)
        config = SlamShareConfig(camera_fps=10.0, render_video_frames=False)
        config.serving.offload.policy = policy
        strong = CpuCostModel(pixel_ns=70.0, pair_ns=40.0,
                              feature_match_ns=1500.0)
        return SlamShareSession(
            [CS(0, dataset, shaping=shaping, device_cpu=strong)], config)

    def test_flapping_link_commits_bounded_by_cooldown(self):
        """The link flips clean<->terrible every second, far faster than
        the 2 s cooldown: committed migrations stay bounded by
        duration/cooldown and the frame ledger stays gap-free."""
        session = self._adaptive_session(duration=12.0)
        cooldown = session.config.serving.offload.cooldown_s

        def set_delay(delay_s):
            link = session._links[0]
            link.uplink.delay_s = delay_s
            link.downlink.delay_s = delay_s

        for i in range(12):
            session.clock.schedule_at(
                float(i), lambda d=(0.3 if i % 2 == 0 else 0.0): set_delay(d))
        result = session.run()
        committed = result.offload.committed_handoffs()
        assert len(committed) <= 12.0 / cooldown + 1
        for first, second in zip(committed, committed[1:]):
            assert (second.committed_at - first.committed_at
                    >= cooldown - 1e-9)
        outcome = result.outcomes[0]
        assert outcome.frames_shed == 0 and outcome.uplink_drops == 0
        assert (outcome.frames_processed + outcome.frames_superseded
                + outcome.frames_offline) == outcome.frames_captured

    def test_disconnect_mid_handoff_aborts_cleanly(self):
        """The client vanishes while the handoff message is in flight on
        a 300 ms link: the reliable-ARQ drop callback aborts the
        migration, placement stays put, and the session completes."""
        from repro.net.tc import PROFILE_DELAY_300MS

        # Static policy: placement is still on the server at t=3.0, so
        # the manual migration below is the only handoff in play.
        session = self._adaptive_session(duration=12.0,
                                         shaping=PROFILE_DELAY_300MS,
                                         policy="static-server")
        initiated = []
        session.clock.schedule_at(
            3.0,
            lambda: initiated.append(session.request_handoff(0, "client")))
        # 300 ms one-way: the handoff is still airborne 50 ms later.
        session.clock.schedule_at(3.05,
                                  lambda: session.disconnect_client(0))
        session.clock.schedule_at(6.0, lambda: session.rejoin_client(0))
        result = session.run()
        assert initiated and initiated[0] is not None
        aborted = [h for h in result.offload.handoffs if h.aborted]
        assert len(aborted) >= 1
        assert aborted[0].dst == "client"
        assert not aborted[0].committed
        outcome = result.outcomes[0]
        assert outcome.disconnects == 1 and outcome.rejoins == 1

    def test_handoff_preserves_imu_anchor_across_churn(self):
        """Disconnect/rejoin, then migrate: the handoff payload carries
        the IMU anchor so the device-side tracker resumes from the exact
        timestamp the server-side tracker had integrated to — tracking
        stays continuous and accurate."""
        session = self._adaptive_session(duration=14.0,
                                         policy="static-server")
        session.clock.schedule_at(4.0, lambda: session.disconnect_client(0))
        session.clock.schedule_at(6.0, lambda: session.rejoin_client(0))
        anchors = []

        def migrate():
            anchors.append(session._per_client[0]["imu_anchor_ts"])
            session.request_handoff(0, "client")

        session.clock.schedule_at(8.0, migrate)
        result = session.run()
        committed = result.offload.committed_handoffs()
        assert len(committed) == 1
        record = committed[0]
        assert record.imu_anchor_ts is not None
        # The anchor in the payload is the one tracking had reached.
        assert record.imu_anchor_ts == anchors[0]
        # Post-rejoin anchor: the offline window was already bridged.
        assert record.imu_anchor_ts > 4.0
        assert result.outcomes[0].frames_local > 0
        assert result.client_ate(0).rmse < 0.15
