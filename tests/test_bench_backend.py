"""Exercise benchmarks/bench_backend.py at tiny sizes under pytest.

Keeps the back-end benchmark on the coverage run's test path: the scene
builders, pooled timing, equivalence assertions and the regression gate
all execute (with minimal repeats), so a refactor that breaks the
harness fails the suite rather than only the CI smoke job.
"""

import copy
import json

import numpy as np

from benchmarks.bench_backend import (
    FLOORS,
    build_ba_scene,
    build_pose_graph_scene,
    check_regression,
    main,
)
from repro.slam.bundle_adjustment import local_bundle_adjustment
from repro.slam.pose_graph import optimize_pose_graph


def test_ba_scene_has_shared_observations():
    slam_map, cam = build_ba_scene(n_kfs=4, n_points=60)
    assert slam_map.n_keyframes == 4
    counts = [p.n_observations for p in slam_map.mappoints.values()]
    assert max(counts) >= 2  # intersection has real multi-view work
    stats = local_bundle_adjustment(
        slam_map, cam, list(slam_map.keyframes), fixed_keyframe_ids={0}
    )
    assert stats.final_error_px < stats.initial_error_px


def test_pose_graph_scene_converges():
    slam_map, edges, ordered = build_pose_graph_scene(n_kfs=10)
    assert len(edges) >= len(ordered) - 1
    stats = optimize_pose_graph(slam_map, edges, fixed={ordered[0]})
    assert stats.final_residual < stats.initial_residual


def test_backends_agree_on_bench_scenes():
    slam_map, cam = build_ba_scene(n_kfs=3, n_points=40, seed=2)
    map_s, map_v = copy.deepcopy(slam_map), copy.deepcopy(slam_map)
    window = list(slam_map.keyframes)
    local_bundle_adjustment(map_s, cam, window, backend="scalar")
    local_bundle_adjustment(map_v, cam, window, backend="vectorized")
    for pid in map_s.mappoints:
        np.testing.assert_allclose(
            map_s.mappoints[pid].position,
            map_v.mappoints[pid].position,
            atol=1e-9, rtol=0,
        )


def test_check_regression_gate(tmp_path):
    baseline = {
        "mode": "smoke",
        "smoke_ops": {"local_ba": {"speedup": 8.0}},
    }
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps(baseline))
    ok = {"mode": "smoke", "ops": {"local_ba": {"speedup": 7.0}}}
    assert check_regression(ok, str(path)) == 0
    halved = {"mode": "smoke", "ops": {"local_ba": {"speedup": 3.0}}}
    assert check_regression(halved, str(path)) == 1
    missing = {"mode": "smoke", "ops": {}}
    assert check_regression(missing, str(path)) == 1


def test_check_regression_full_mode_enforces_floors(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"mode": "full", "ops": {}}))
    below_floor = {
        "mode": "full",
        "ops": {op: {"speedup": floor - 0.5} for op, floor in FLOORS.items()},
    }
    assert check_regression(below_floor, str(path)) == 1


def test_main_smoke_runs(tmp_path):
    out = tmp_path / "report.json"
    assert main(["--smoke", "--out", str(out)]) == 0
    report = json.loads(out.read_text())
    assert set(FLOORS) <= set(report["ops"])
