"""Equivalence suite: batched back-end kernels vs their scalar references.

The vectorized bundle-adjustment and pose-graph paths are only allowed
to differ from the scalar loops by floating-point noise (<= 1e-9); these
tests pin that on randomized maps, including the awkward cases — fixed
keyframes, ``min_observations`` filtering, culled map points and
keyframes, non-finite measured depths and empty edge lists.
"""

import copy

import numpy as np
import pytest

from repro.geometry import SE3, se3_batch, so3
from repro.slam import IdAllocator, SlamMap
from repro.slam.bundle_adjustment import (
    global_bundle_adjustment,
    local_bundle_adjustment,
)
from repro.slam.keyframe import KeyFrame
from repro.slam.mappoint import MapPoint
from repro.slam.pose_graph import (
    PoseGraphEdge,
    _total_residual,
    build_essential_graph,
    optimize_pose_graph,
)
from repro.vision import PinholeCamera
from repro.vision.brief import DESCRIPTOR_BYTES

TOL = 1e-9


# --------------------------------------------------------------- geometry
class TestBatchedGeometry:
    def _omegas(self):
        rng = np.random.default_rng(7)
        regular = rng.normal(scale=1.2, size=(40, 3))
        tiny = rng.normal(size=(5, 3)) * 1e-13
        axes = rng.normal(size=(5, 3))
        axes /= np.linalg.norm(axes, axis=1, keepdims=True)
        near_pi = axes * (np.pi - 1e-8)
        at_pi = axes[:2] * np.pi
        return np.vstack([regular, tiny, near_pi, at_pi, np.zeros((1, 3))])

    def test_exp_batch_matches_scalar(self):
        omegas = self._omegas()
        batched = so3.exp_batch(omegas)
        for row, omega in zip(batched, omegas):
            np.testing.assert_allclose(row, so3.exp(omega), atol=1e-12, rtol=0)

    def test_log_batch_matches_scalar(self):
        rotations = so3.exp_batch(self._omegas())
        batched = so3.log_batch(rotations)
        for row, rotation in zip(batched, rotations):
            np.testing.assert_allclose(row, so3.log(rotation), atol=1e-9, rtol=0)

    def test_se3_exp_log_match_scalar(self):
        rng = np.random.default_rng(11)
        xi = np.vstack([
            rng.normal(scale=0.8, size=(30, 6)),
            rng.normal(size=(4, 6)) * 1e-13,
        ])
        rot, trans = se3_batch.exp(xi)
        twists = se3_batch.log(rot, trans)
        for i in range(len(xi)):
            scalar = SE3.exp(xi[i])
            np.testing.assert_allclose(rot[i], scalar.rotation, atol=1e-12, rtol=0)
            np.testing.assert_allclose(
                trans[i], scalar.translation, atol=1e-12, rtol=0
            )
            np.testing.assert_allclose(twists[i], scalar.log(), atol=1e-9, rtol=0)

    def test_compose_inverse_apply_match_scalar(self):
        rng = np.random.default_rng(13)
        poses_a = [SE3.exp(rng.normal(scale=0.5, size=6)) for _ in range(12)]
        poses_b = [SE3.exp(rng.normal(scale=0.5, size=6)) for _ in range(12)]
        points = rng.normal(scale=3.0, size=(12, 3))
        ra, ta = se3_batch.pack(poses_a)
        rb, tb = se3_batch.pack(poses_b)
        rc, tc = se3_batch.compose(ra, ta, rb, tb)
        ri, ti = se3_batch.inverse(ra, ta)
        moved = se3_batch.apply(ra, ta, points)
        for i, (a, b) in enumerate(zip(poses_a, poses_b)):
            composed = a * b
            np.testing.assert_allclose(rc[i], composed.rotation, atol=1e-12)
            np.testing.assert_allclose(tc[i], composed.translation, atol=1e-12)
            inv = a.inverse()
            np.testing.assert_allclose(ri[i], inv.rotation, atol=1e-12)
            np.testing.assert_allclose(ti[i], inv.translation, atol=1e-12)
            np.testing.assert_allclose(moved[i], a.apply(points[i]), atol=1e-12)

    def test_pack_unpack_roundtrip(self):
        rng = np.random.default_rng(17)
        poses = [SE3.exp(rng.normal(size=6)) for _ in range(5)]
        rot, trans = se3_batch.pack(poses)
        restored = se3_batch.unpack(rot, trans)
        for orig, back in zip(poses, restored):
            assert orig.almost_equal(back, 1e-12, 1e-12)
        empty_r, empty_t = se3_batch.pack([])
        assert empty_r.shape == (0, 3, 3) and empty_t.shape == (0, 3)


# ------------------------------------------------------------- scene setup
def _noisy_scene(
    n_kfs=5,
    n_points=150,
    seed=0,
    pose_noise=0.02,
    point_noise=0.05,
    bad_depth_fraction=0.0,
):
    """Keyframes viewing a shared noisy cloud; BA has real work to do."""
    rng = np.random.default_rng(seed)
    cam = PinholeCamera.ideal(320, 240)
    world = np.column_stack(
        [
            rng.uniform(-3, 3, n_points),
            rng.uniform(-2, 2, n_points),
            rng.uniform(4, 12, n_points),
        ]
    )
    slam_map = SlamMap()
    kf_alloc, pt_alloc = IdAllocator(0), IdAllocator(0)
    pids = []
    for i in range(n_points):
        point = MapPoint(
            point_id=pt_alloc.allocate(),
            position=world[i] + rng.normal(scale=point_noise, size=3),
            descriptor=rng.integers(0, 256, DESCRIPTOR_BYTES, dtype=np.uint8),
        )
        slam_map.add_mappoint(point)
        pids.append(point.point_id)
    for k in range(n_kfs):
        pose = SE3(so3.exp(np.array([0, 0.04 * k, 0])), np.array([0.25 * k, 0, 0]))
        uv, depth, valid = cam.project_world(world, pose)
        idx = np.nonzero(valid)[0]
        depths = depth[idx].copy()
        if bad_depth_fraction:
            bad = rng.random(len(idx)) < bad_depth_fraction
            depths[bad] = rng.choice(
                np.array([np.nan, np.inf, -1.0]), size=int(bad.sum())
            )
        kf = KeyFrame(
            keyframe_id=kf_alloc.allocate(),
            timestamp=float(k),
            pose_cw=pose.perturb(rng.normal(scale=pose_noise, size=6))
            if k > 0 else pose,
            uv=uv[idx],
            descriptors=np.zeros((len(idx), DESCRIPTOR_BYTES), dtype=np.uint8),
            depths=depths,
            point_ids=np.array([pids[i] for i in idx], dtype=np.int64),
        )
        for feat_i, world_i in enumerate(idx):
            slam_map.mappoints[pids[world_i]].add_observation(
                kf.keyframe_id, feat_i
            )
        slam_map.add_keyframe(kf)
    return slam_map, cam


def _assert_maps_equal(map_a, map_b, tol=TOL):
    assert set(map_a.mappoints) == set(map_b.mappoints)
    for pid in map_a.mappoints:
        np.testing.assert_allclose(
            map_a.mappoints[pid].position,
            map_b.mappoints[pid].position,
            atol=tol, rtol=0, err_msg=f"point {pid}",
        )
    assert set(map_a.keyframes) == set(map_b.keyframes)
    for kf_id in map_a.keyframes:
        pa = map_a.keyframes[kf_id].pose_cw
        pb = map_b.keyframes[kf_id].pose_cw
        np.testing.assert_allclose(
            pa.rotation, pb.rotation, atol=tol, rtol=0, err_msg=f"kf {kf_id} R"
        )
        np.testing.assert_allclose(
            pa.translation, pb.translation, atol=tol, rtol=0,
            err_msg=f"kf {kf_id} t",
        )


def _run_ba_both(slam_map, cam, window=None, **kwargs):
    map_s, map_v = copy.deepcopy(slam_map), copy.deepcopy(slam_map)
    window = list(slam_map.keyframes) if window is None else window
    stats_s = local_bundle_adjustment(map_s, cam, window, backend="scalar", **kwargs)
    stats_v = local_bundle_adjustment(
        map_v, cam, window, backend="vectorized", **kwargs
    )
    return map_s, map_v, stats_s, stats_v


# -------------------------------------------------------- BA equivalence
class TestBundleAdjustmentEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_randomized_maps(self, seed):
        slam_map, cam = _noisy_scene(seed=seed)
        map_s, map_v, stats_s, stats_v = _run_ba_both(
            slam_map, cam, fixed_keyframe_ids={0}, iterations=2
        )
        assert stats_v.final_error_px < stats_v.initial_error_px
        assert stats_s.n_points == stats_v.n_points
        assert abs(stats_s.initial_error_px - stats_v.initial_error_px) < TOL
        assert abs(stats_s.final_error_px - stats_v.final_error_px) < TOL
        _assert_maps_equal(map_s, map_v)

    def test_min_observations_filtering(self):
        slam_map, cam = _noisy_scene(seed=3)
        map_s, map_v, _, _ = _run_ba_both(
            slam_map, cam, fixed_keyframe_ids={0}, min_observations=4
        )
        _assert_maps_equal(map_s, map_v)

    def test_culled_points_and_keyframes(self):
        slam_map, cam = _noisy_scene(seed=4)
        # Stale references: some features point at ids that were culled
        # from the map (simulated by pointing at never-allocated ids).
        for kf in slam_map.keyframes.values():
            kf.point_ids[::7] = 10_000 + np.arange(len(kf.point_ids[::7]))
        # And the BA window names a keyframe that no longer exists.
        window = list(slam_map.keyframes) + [999]
        map_s, map_v, stats_s, stats_v = _run_ba_both(
            slam_map, cam, window=window, fixed_keyframe_ids={0}
        )
        assert stats_s.n_keyframes == stats_v.n_keyframes
        _assert_maps_equal(map_s, map_v)

    def test_non_finite_depths_guarded(self):
        slam_map, cam = _noisy_scene(seed=5, bad_depth_fraction=0.3)
        map_s, map_v, _, _ = _run_ba_both(slam_map, cam, fixed_keyframe_ids={0})
        _assert_maps_equal(map_s, map_v)
        for position in (p.position for p in map_v.mappoints.values()):
            assert np.isfinite(position).all()

    def test_partial_window(self):
        slam_map, cam = _noisy_scene(seed=6)
        window = sorted(slam_map.keyframes)[:3]
        map_s, map_v, _, _ = _run_ba_both(
            slam_map, cam, window=window, fixed_keyframe_ids={window[0]}
        )
        _assert_maps_equal(map_s, map_v)

    def test_global_ba(self):
        slam_map, cam = _noisy_scene(seed=7, n_kfs=4)
        map_s, map_v = copy.deepcopy(slam_map), copy.deepcopy(slam_map)
        global_bundle_adjustment(map_s, cam, backend="scalar")
        global_bundle_adjustment(map_v, cam, backend="vectorized")
        _assert_maps_equal(map_s, map_v)

    def test_unknown_backend_rejected(self):
        # "gpu" is a registered tier since the dispatch layer landed;
        # a truly unknown name must still raise from the registry.
        slam_map, cam = _noisy_scene(seed=8, n_kfs=2, n_points=20)
        with pytest.raises(ValueError, match="unknown backend"):
            local_bundle_adjustment(
                slam_map, cam, list(slam_map.keyframes), backend="neural"
            )


# ------------------------------------------------- pose-graph equivalence
def _drifted_chain(n=14, seed=0):
    """Edges built from clean poses, then drift injected -> real residual."""
    from tests.test_net_serialization_transport import make_map

    slam_map = make_map(n_keyframes=n, n_points_per_kf=8, seed=seed)
    ordered = sorted(slam_map.keyframes)
    for k, kf_id in enumerate(ordered):
        slam_map.keyframes[kf_id].pose_cw = SE3(
            so3.exp(np.array([0.0, 0.02 * k, 0.0])),
            np.array([0.5 * k, 0.0, 0.0]),
        )
    edges = build_essential_graph(slam_map)
    loop = PoseGraphEdge(
        kf_a=ordered[-1], kf_b=ordered[0],
        relative=slam_map.keyframes[ordered[-1]].pose_cw
        * slam_map.keyframes[ordered[0]].pose_cw.inverse(),
        weight=150.0, is_loop_edge=True,
    )
    rng = np.random.default_rng(seed + 100)
    for k, kf_id in enumerate(ordered[1:], start=1):
        kf = slam_map.keyframes[kf_id]
        kf.pose_cw = kf.pose_cw.perturb(rng.normal(scale=0.02 * k, size=6))
    return slam_map, edges + [loop], ordered


class TestPoseGraphEquivalence:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_randomized_graphs(self, seed):
        slam_map, edges, ordered = _drifted_chain(seed=seed)
        map_s, map_v = copy.deepcopy(slam_map), copy.deepcopy(slam_map)
        stats_s = optimize_pose_graph(
            map_s, edges, fixed={ordered[0]}, backend="scalar"
        )
        stats_v = optimize_pose_graph(
            map_v, edges, fixed={ordered[0]}, backend="vectorized"
        )
        assert stats_v.final_residual < stats_v.initial_residual
        assert abs(stats_s.initial_residual - stats_v.initial_residual) < 1e-6
        assert abs(stats_s.final_residual - stats_v.final_residual) < 1e-6
        assert stats_s.n_edges == stats_v.n_edges
        _assert_maps_equal(map_s, map_v)

    @pytest.mark.parametrize("backend", ["scalar", "vectorized"])
    def test_edge_to_culled_keyframe_skipped(self, backend):
        # Regression: a loop edge naming a culled keyframe used to crash
        # the residual pass with a KeyError.
        slam_map, edges, ordered = _drifted_chain(n=6)
        ghost = PoseGraphEdge(
            kf_a=ordered[-1], kf_b=999_999, relative=SE3.identity(), weight=50.0
        )
        stats = optimize_pose_graph(
            slam_map, edges + [ghost], fixed={ordered[0]}, backend=backend
        )
        assert stats.n_edges == len(edges)  # ghost edge not counted

    def test_total_residual_skips_missing(self):
        slam_map, edges, ordered = _drifted_chain(n=5)
        poses = {k: kf.pose_cw for k, kf in slam_map.keyframes.items()}
        ghost = PoseGraphEdge(
            kf_a=123_456, kf_b=ordered[0], relative=SE3.identity()
        )
        assert _total_residual(poses, edges + [ghost]) == pytest.approx(
            _total_residual(poses, edges)
        )

    @pytest.mark.parametrize("backend", ["scalar", "vectorized"])
    def test_empty_edges_noop(self, backend):
        slam_map, _, ordered = _drifted_chain(n=4)
        before = {k: kf.pose_cw for k, kf in slam_map.keyframes.items()}
        stats = optimize_pose_graph(slam_map, [], backend=backend)
        assert stats.n_edges == 0
        assert stats.initial_residual == 0.0 == stats.final_residual
        for kf_id, pose in before.items():
            assert slam_map.keyframes[kf_id].pose_cw.almost_equal(
                pose, 1e-12, 1e-12
            )

    def test_fixed_poses_untouched_vectorized(self):
        slam_map, edges, ordered = _drifted_chain(n=8)
        anchor = ordered[0]
        before = slam_map.keyframes[anchor].pose_cw
        optimize_pose_graph(
            slam_map, edges, fixed={anchor}, backend="vectorized"
        )
        assert slam_map.keyframes[anchor].pose_cw.almost_equal(
            before, 1e-12, 1e-12
        )

    def test_unknown_backend_rejected(self):
        slam_map, edges, _ = _drifted_chain(n=3)
        with pytest.raises(ValueError, match="unknown backend"):
            optimize_pose_graph(slam_map, edges, backend="cuda")
