"""Cross-process shared-memory tier: region lifetime, ProcessRWLock,
packed map, and the shm-backed sharded store driven from real processes.

The process-spawning tests are kept small (a few entities, short loops)
and skip gracefully where OS shared memory or multiprocessing
primitives are unavailable (some sandboxes mount no /dev/shm).
"""

import multiprocessing as mp
import threading
import time

import numpy as np
import pytest

from repro.geometry import SE3
from repro.sharedmem import (
    Arena,
    ProcessRWLock,
    SharedMemoryRegion,
    ShmMapLayout,
    ShmShardedMapStore,
)
from repro.slam.keyframe import KeyFrame
from repro.slam.mappoint import MapPoint


def _shm_available() -> bool:
    try:
        region = SharedMemoryRegion(size=64)
    except (OSError, PermissionError):
        return False
    region.close()
    region.unlink()
    return True


def _mp_ctx():
    """A context whose primitives work here, or None to skip."""
    for method in ("fork", "spawn"):
        try:
            ctx = mp.get_context(method)
            # Semaphores are the part most often missing in sandboxes.
            ctx.Condition()
            return ctx
        except (ValueError, OSError, ImportError):
            continue
    return None


shm_required = pytest.mark.skipif(
    not _shm_available(), reason="OS shared memory unavailable"
)


def make_keyframe(kf_id: int, center, n_features: int = 8) -> KeyFrame:
    rng = np.random.default_rng(kf_id)
    center = np.asarray(center, dtype=np.float64)
    point_ids = np.arange(kf_id * 100, kf_id * 100 + n_features,
                          dtype=np.int64)
    return KeyFrame(
        keyframe_id=kf_id,
        timestamp=float(kf_id),
        pose_cw=SE3(np.eye(3), -center),
        uv=rng.uniform(0, 640, (n_features, 2)),
        descriptors=rng.integers(0, 256, (n_features, 32), dtype=np.uint8),
        depths=rng.uniform(1, 10, n_features),
        point_ids=point_ids,
        bow_vector={int(w): float(rng.random())
                    for w in rng.integers(0, 512, 4)},
    )


def make_mappoint(point_id: int, position) -> MapPoint:
    rng = np.random.default_rng(point_id)
    return MapPoint(
        point_id=point_id,
        position=np.asarray(position, dtype=np.float64),
        descriptor=rng.integers(0, 256, 32, dtype=np.uint8),
        observations={0: 0},
    )


# ---------------------------------------------------------------- lifetime
@shm_required
class TestRegionLifetime:
    def test_close_and_unlink_are_idempotent(self):
        region = SharedMemoryRegion(size=256)
        assert region.owner
        region.close()
        region.close()          # second close: no-op, no raise
        assert region.closed
        region.unlink()
        region.unlink()         # second unlink: no-op, no raise

    def test_attacher_never_unlinks(self):
        owner = SharedMemoryRegion(size=256)
        owner.buffer[:4] = b"abcd"
        attached = SharedMemoryRegion(name=owner.name, create=False)
        assert not attached.owner
        assert bytes(attached.buffer[:4]) == b"abcd"
        attached.close()
        attached.unlink()       # no-op: segment must survive
        again = SharedMemoryRegion(name=owner.name, create=False)
        assert bytes(again.buffer[:4]) == b"abcd"
        again.close()
        owner.close()
        owner.unlink()

    def test_buffer_unusable_after_close(self):
        region = SharedMemoryRegion(size=64)
        region.close()
        with pytest.raises(ValueError):
            _ = region.buffer
        region.unlink()

    def test_context_manager_owner_cleans_up(self):
        with SharedMemoryRegion(size=128) as region:
            name = region.name
            region.buffer[0] = 7
        with pytest.raises(FileNotFoundError):
            SharedMemoryRegion(name=name, create=False)

    def test_arena_over_shm_buffer(self):
        with SharedMemoryRegion(size=4096) as region:
            arena = Arena(region.buffer)
            off = arena.alloc(100)
            view = arena.view(off, 100)
            view[:] = bytes(range(100))
            assert bytes(arena.view(off, 100)) == bytes(range(100))
            # Release every exported view before the region unmaps.
            view.release()
            arena.buffer.release()
            del view, arena


# ------------------------------------------------------------------ prwlock
class TestProcessRWLockLocal:
    def test_read_write_semantics(self):
        lock = ProcessRWLock()
        assert lock.acquire_read()
        assert lock.active_readers == 1
        assert not lock.acquire_write(timeout=0.05)
        lock.release_read()
        assert lock.acquire_write()
        assert lock.writer_active
        assert not lock.acquire_read(timeout=0.05)
        lock.release_write()

    def test_release_without_acquire_raises(self):
        lock = ProcessRWLock()
        with pytest.raises(RuntimeError):
            lock.release_read()
        with pytest.raises(RuntimeError):
            lock.release_write()

    def test_bind_uses_buffer_state(self):
        buf = bytearray(64)
        a = ProcessRWLock().bind(buf, offset=16)
        b = a.clone().bind(buf, offset=16)
        with a.read():
            # b sees a's reader through the shared lock word.
            assert b.active_readers == 1
        assert b.active_readers == 0

    def test_clone_shares_state_but_not_metrics(self):
        lock = ProcessRWLock()
        buf = bytearray(32)
        lock.bind(buf)
        twin = lock.clone().bind(buf)
        with lock.read():
            pass
        assert lock.read_acquisitions == 1
        assert twin.read_acquisitions == 0
        twin.unbind()            # must not disturb the original's view
        with lock.write():
            assert lock.writer_active

    def test_metrics_fold(self):
        lock = ProcessRWLock()
        with lock.read():
            pass
        snap = lock.metrics_snapshot()
        other = ProcessRWLock()
        other.fold_metrics(snap)
        other.fold_metrics(snap)
        assert other.read_acquisitions == 2
        assert other.read_wait_ns == 2 * snap["read_wait_ns"]

    def test_writer_preference_blocks_new_readers(self):
        lock = ProcessRWLock()
        assert lock.acquire_read()
        state = {"acquired": False}

        def writer():
            assert lock.acquire_write(timeout=5.0)
            state["acquired"] = True
            lock.release_write()

        t = threading.Thread(target=writer)
        t.start()
        deadline = time.monotonic() + 2.0
        while lock._state[2] == 0 and time.monotonic() < deadline:
            time.sleep(0.005)   # wait until the writer is queued
        # A new reader must now be refused (write preference).
        assert not lock.acquire_read(timeout=0.05)
        lock.release_read()
        t.join(timeout=5.0)
        assert state["acquired"]


# ---------------------------------------------------- cross-process helpers
def _hold_write(handle, hold_s, acquired, release):
    store = handle.attach()
    try:
        with store.pack.lock.write():
            acquired.set()
            release.wait(timeout=hold_s)
    finally:
        store.close()


def _pack_writer(handle, n_rounds, rows):
    store = handle.attach()
    try:
        for k in range(1, n_rounds + 1):
            store.pack.set_positions(
                np.arange(rows), np.full((rows, 3), float(k))
            )
    finally:
        store.close()


def _torn_read_probe(handle, rows, stop, failures):
    store = handle.attach()
    try:
        while not stop.is_set():
            with store.pack.read() as (pos, _desc, _ids, _version):
                block = pos[:rows].copy()
            if not (block == block[0, 0]).all():
                failures.put(block[:2].tolist())
                return
    finally:
        store.close()


def _publish_worker(handle, worker_id, n_keyframes):
    store = handle.attach()
    try:
        for i in range(n_keyframes):
            kf_id = worker_id * 1000 + i
            kf = make_keyframe(kf_id, center=(worker_id * 11.0, i * 9.0, 0.0))
            points = [
                make_mappoint(int(pid), (worker_id * 11.0, i * 9.0, j * 0.1))
                for j, pid in enumerate(kf.point_ids)
            ]
            store.publish_map([kf], points)
        # An ordered multi-shard transaction from each process: rewrite
        # this worker's first keyframe while holding a 3-shard span.
        first = make_keyframe(worker_id * 1000,
                              center=(worker_id * 11.0, 0.0, 0.0))
        target = store.shard_of_keyframe(first)
        span = sorted({(target + k) % store.n_shards for k in range(3)})
        with store.write_transaction(span):
            store._put_keyframe_locked(store.shards[target], first)
    finally:
        store.close()


@shm_required
class TestCrossProcess:
    @pytest.fixture()
    def ctx(self):
        ctx = _mp_ctx()
        if ctx is None:
            pytest.skip("no usable multiprocessing context")
        return ctx

    def _run(self, procs, timeout=60.0):
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=timeout)
            if p.is_alive():
                p.terminate()
                raise AssertionError("worker process hung")
            assert p.exitcode == 0

    def test_write_lock_excludes_other_process(self, ctx):
        store = ShmShardedMapStore.create(
            n_shards=2, pack_capacity=64, shard_slab_bytes=16 * 1024,
            ctx=ctx, lock_timeout_s=20.0,
        )
        try:
            acquired, release = ctx.Event(), ctx.Event()
            p = ctx.Process(target=_hold_write,
                            args=(store.handle(), 15.0, acquired, release))
            p.start()
            assert acquired.wait(timeout=20.0)
            # The child holds the pack write lock: reads must block.
            assert not store.pack.lock.acquire_read(timeout=0.2)
            release.set()
            assert store.pack.lock.acquire_read(timeout=20.0)
            store.pack.lock.release_read()
            p.join(timeout=20.0)
            assert p.exitcode == 0
        finally:
            store.close()
            store.unlink()

    def test_no_torn_reads_under_process_writer(self, ctx):
        rows = 64
        store = ShmShardedMapStore.create(
            n_shards=2, pack_capacity=rows, shard_slab_bytes=16 * 1024,
            ctx=ctx, lock_timeout_s=20.0,
        )
        try:
            store.pack.append(
                np.zeros((rows, 3)),
                np.zeros((rows, 32), dtype=np.uint8),
                np.arange(rows, dtype=np.int64),
            )
            stop, failures = ctx.Event(), ctx.Queue()
            writer = ctx.Process(target=_pack_writer,
                                 args=(store.handle(), 60, rows))
            reader = ctx.Process(target=_torn_read_probe,
                                 args=(store.handle(), rows, stop, failures))
            reader.start()
            writer.start()
            writer.join(timeout=60.0)
            stop.set()
            reader.join(timeout=60.0)
            assert writer.exitcode == 0
            assert reader.exitcode == 0
            assert failures.empty(), f"torn read: {failures.get()}"
            # The final state is the last writer round, everywhere.
            pos, _, _, version = store.pack.snapshot()
            assert (pos == 60.0).all()
            assert version >= 61  # initial append + 60 rounds
        finally:
            store.close()
            store.unlink()

    def test_two_processes_publish_and_transact(self, ctx):
        store = ShmShardedMapStore.create(
            n_shards=4, pack_capacity=64, shard_slab_bytes=64 * 1024,
            ctx=ctx, lock_timeout_s=30.0,
        )
        n_kf = 4
        try:
            procs = [
                ctx.Process(target=_publish_worker,
                            args=(store.handle(), w, n_kf))
                for w in range(2)
            ]
            self._run(procs)
            # Everything both processes wrote is visible here.
            kf_ids = set(store.keyframe_ids())
            expected = {w * 1000 + i for w in range(2) for i in range(n_kf)}
            assert kf_ids == expected
            stats = store.stats()
            assert stats.n_keyframes == 2 * n_kf
            assert stats.n_mappoints == 2 * n_kf * 8
            for w in range(2):
                kf = store.get_keyframe(w * 1000)
                assert kf is not None
                np.testing.assert_allclose(kf.camera_center(),
                                           (w * 11.0, 0.0, 0.0))
            for pid in (0, 1001 * 100):
                # worker 0 kf 0 points start at 0; worker 1 kf 1 at 100100
                assert store.get_mappoint(pid) is not None
        finally:
            store.close()
            store.unlink()


# ------------------------------------------------------- same-process store
@shm_required
class TestShmStoreSingleProcess:
    def test_attach_sees_owner_writes(self):
        store = ShmShardedMapStore.create(
            n_shards=2, pack_capacity=32, shard_slab_bytes=32 * 1024,
        )
        try:
            kf = make_keyframe(5, center=(1.0, 2.0, 3.0))
            store.put_keyframe(kf)
            other = ShmShardedMapStore.attach(store.handle())
            got = other.get_keyframe(5)
            assert got is not None
            np.testing.assert_allclose(got.camera_center(), (1.0, 2.0, 3.0))
            np.testing.assert_array_equal(got.descriptors, kf.descriptors)
            # Sticky routing agrees across attachments.
            assert other.shard_of_keyframe(kf) == store.shard_of_keyframe(kf)
            other.close()       # closing an attachment leaves the owner live
            assert store.get_keyframe(5) is not None
        finally:
            store.close()
            store.unlink()

    def test_remove_tombstones_propagate(self):
        store = ShmShardedMapStore.create(
            n_shards=2, pack_capacity=32, shard_slab_bytes=32 * 1024,
        )
        try:
            other = ShmShardedMapStore.attach(store.handle())
            store.put_mappoint(make_mappoint(77, (0.5, 0.5, 0.5)))
            assert other.get_mappoint(77) is not None
            store.remove_mappoint(77)
            assert other.get_mappoint(77) is None
            assert store.stats().n_mappoints == 0
            other.close()
        finally:
            store.close()
            store.unlink()

    def test_store_fold_metrics(self):
        store = ShmShardedMapStore.create(
            n_shards=2, pack_capacity=32, shard_slab_bytes=32 * 1024,
        )
        try:
            worker = ShmShardedMapStore.attach(store.handle())
            worker.put_keyframe(make_keyframe(1, center=(0, 0, 0)))
            snap = worker.metrics_snapshot()
            assert sum(s["write_acquisitions"] for s in snap["shards"]) == 1
            before = sum(s.lock.write_acquisitions for s in store.shards)
            store.fold_metrics(snap)
            after = sum(s.lock.write_acquisitions for s in store.shards)
            assert after == before + 1
            worker.close()
        finally:
            store.close()
            store.unlink()

    def test_layout_header_roundtrip(self):
        layout = ShmMapLayout(n_shards=4, pack_capacity=128,
                              shard_slab_bytes=32 * 1024, region_size=5.0)
        with SharedMemoryRegion(size=layout.total_bytes) as region:
            layout.write_global_header(region.buffer)
            parsed = ShmMapLayout.from_global_header(region.buffer)
            assert parsed == layout


# ------------------------------------------------------------- orchestrator
@shm_required
class TestServingOrchestrator:
    @pytest.fixture()
    def cfg(self):
        from repro.core.orchestrator import ServingWorkloadConfig

        ctx = _mp_ctx()
        if ctx is None:
            pytest.skip("no usable multiprocessing context")
        return ServingWorkloadConfig(
            n_points=300, n_frames=8, features_per_frame=48,
            reloc_candidates=60, pack_capacity=2048,
            shard_slab_bytes=256 * 1024, publish_every=3, merge_every=6,
            start_method=ctx.get_start_method(),
        )

    def test_thread_and_process_modes_agree(self, cfg):
        from repro.core.orchestrator import ServingOrchestrator

        reports = {
            mode: ServingOrchestrator(2, cfg, mode=mode).run()
            for mode in ("thread", "process")
        }
        for mode, rep in reports.items():
            assert rep.frames == 2 * cfg.n_frames, mode
            assert rep.matches > 0, mode
            assert len(rep.per_worker) == 2, mode
        # Identical deterministic workload => identical work and map.
        t, p = reports["thread"], reports["process"]
        assert t.matches == p.matches
        assert t.publishes == p.publishes
        assert t.store == p.store
