"""Tests for place recognition and multi-client map merging (Alg. 2)."""

import numpy as np
import pytest

from repro.datasets import euroc_dataset
from repro.metrics import absolute_trajectory_error
from repro.slam import (
    MapMerger,
    MergerConfig,
    SlamConfig,
    SlamSystem,
    default_vocabulary,
    detect_common_region,
)
from tests.test_slam_system import run_system

VOCAB = default_vocabulary()


def build_two_clients(duration=12.0, mono_scale_b=1.0):
    """Two clients exploring the same hall on overlapping paths."""
    ds_a = euroc_dataset("MH04", duration=duration, rate=10.0)
    ds_b = euroc_dataset("MH05", duration=duration, rate=10.0)
    cfg_a = SlamConfig()
    cfg_b = SlamConfig(mono=(mono_scale_b != 1.0), mono_scale=mono_scale_b)
    from repro.imu import GRAVITY_W, ImuBuffer, preintegrate, synthesize_imu

    systems = []
    for client_id, (ds, cfg, seeds) in enumerate(
        [(ds_a, cfg_a, (7, 11)), (ds_b, cfg_b, (9, 13))]
    ):
        system = SlamSystem(
            ds.camera, cfg, client_id=client_id, vocabulary=VOCAB,
            gravity=ds.pose_cw(0).rotation @ GRAVITY_W,
        )
        oracle = ds.make_oracle(stereo=True, seed=seeds[0])
        imu = ImuBuffer(synthesize_imu(ds.ground_truth, rate_hz=200.0,
                                       seed=seeds[1]))
        prev = None
        for ts, obs in ds.frames(oracle):
            delta = preintegrate(imu, prev, ts) if prev is not None else None
            system.process_frame(ts, obs, imu_delta=delta)
            prev = ts
        systems.append(system)
    return (ds_a, systems[0]), (ds_b, systems[1])


# Build once: merging tests share this fixture-ish module state.
(_DS_A, _SYS_A_TEMPLATE), (_DS_B, _SYS_B_TEMPLATE) = build_two_clients()


def fresh_pair():
    """Re-run is expensive; rebuild the pair per mutation-heavy test."""
    return build_two_clients()


class TestDetectCommonRegion:
    def test_finds_overlap_between_clients(self):
        sys_a, sys_b = _SYS_A_TEMPLATE, _SYS_B_TEMPLATE
        hits = 0
        for kf in list(sys_b.map.keyframes.values())[:10]:
            region = detect_common_region(kf, sys_a.map, sys_a.database)
            if region:
                hits += 1
        assert hits >= 5

    def test_excludes_own_client(self):
        sys_a = _SYS_A_TEMPLATE
        kf = next(iter(sys_a.map.keyframes.values()))
        region = detect_common_region(
            kf, sys_a.map, sys_a.database, exclude_client=0
        )
        assert not region

    def test_best_is_highest_score(self):
        sys_a, sys_b = _SYS_A_TEMPLATE, _SYS_B_TEMPLATE
        kf = next(iter(sys_b.map.keyframes.values()))
        region = detect_common_region(kf, sys_a.map, sys_a.database)
        if region:
            scores = [c.score for c in region.candidates]
            assert scores == sorted(scores, reverse=True)


class TestMapMerging:
    def test_merge_two_stereo_maps(self):
        (ds_a, sys_a), (ds_b, sys_b) = fresh_pair()
        merger = MapMerger(sys_a.map, sys_a.database, ds_a.camera)
        result = merger.merge_maps(sys_b.map, client_id=1)
        assert result.success
        assert result.transform.scale == pytest.approx(1.0, abs=0.02)
        # Client B's keyframes landed in the global map, correctly placed.
        traj_b = sys_a.map.keyframe_trajectory(client_id=1)
        ate = absolute_trajectory_error(traj_b, ds_b.ground_truth)
        assert ate.rmse < 0.10

    def test_merge_recovers_mono_scale(self):
        (ds_a, sys_a), (ds_b, sys_b) = build_two_clients(mono_scale_b=0.75)
        merger = MapMerger(sys_a.map, sys_a.database, ds_a.camera)
        result = merger.merge_maps(sys_b.map, client_id=1)
        assert result.success
        # Sim3 alignment must rescale B's 0.75x map into A's metric frame.
        assert result.transform.scale == pytest.approx(1.0 / 0.75, rel=0.05)

    def test_merged_maps_share_one_frame(self):
        (ds_a, sys_a), (ds_b, sys_b) = fresh_pair()
        merger = MapMerger(sys_a.map, sys_a.database, ds_a.camera)
        merger.merge_maps(sys_b.map, client_id=1)
        # One alignment maps the *combined* keyframe trajectory to the
        # combined ground truth: the frames are truly shared.
        traj_a = sys_a.map.keyframe_trajectory(client_id=0)
        traj_b = sys_a.map.keyframe_trajectory(client_id=1)
        from repro.geometry import umeyama

        est = np.vstack([traj_a.positions, traj_b.positions])
        gt = np.vstack(
            [
                ds_a.ground_truth.resample(traj_a.timestamps).positions,
                ds_b.ground_truth.resample(traj_b.timestamps).positions,
            ]
        )
        transform = umeyama(est, gt)
        residual = np.linalg.norm(gt - transform.apply(est), axis=1)
        assert np.sqrt((residual ** 2).mean()) < 0.10

    def test_merge_fuses_duplicate_points(self):
        (ds_a, sys_a), (ds_b, sys_b) = fresh_pair()
        n_before = sys_a.map.n_mappoints + sys_b.map.n_mappoints
        merger = MapMerger(sys_a.map, sys_a.database, ds_a.camera)
        result = merger.merge_maps(sys_b.map, client_id=1)
        assert result.n_fused_points > 0
        assert sys_a.map.n_mappoints == n_before - result.n_fused_points

    def test_merge_fails_for_disjoint_maps(self):
        # A V202 (small Vicon room) map shares no landmarks with MH04.
        from repro.datasets import euroc_dataset as make

        ds_v = make("V202", duration=6.0, rate=10.0)
        sys_v, _ = run_system(ds_v, client_id=1)
        (ds_a, sys_a), _ = fresh_pair()
        merger = MapMerger(sys_a.map, sys_a.database, ds_a.camera)
        result = merger.merge_maps(sys_v.map, client_id=1)
        assert not result.success
        assert result.n_keyframes_checked > 0

    def test_newest_only_trigger_checks_fewer(self):
        # Ablation A2: vanilla ORB-SLAM3 merge policy checks only the
        # newest keyframe; SLAM-Share checks all of them (paper §4.3.1).
        (ds_a, sys_a), (ds_b, sys_b) = fresh_pair()
        all_kf = MapMerger(
            sys_a.map, sys_a.database, ds_a.camera,
            MergerConfig(check_all_keyframes=True),
        )
        result = all_kf.merge_maps(sys_b.map, client_id=1)
        assert result.success
        (ds_a2, sys_a2), (ds_b2, sys_b2) = fresh_pair()
        newest_only = MapMerger(
            sys_a2.map, sys_a2.database, ds_a2.camera,
            MergerConfig(check_all_keyframes=False),
        )
        result2 = newest_only.merge_maps(sys_b2.map, client_id=1)
        assert result2.n_keyframes_checked <= 1

    def test_ba_runs_after_merge(self):
        (ds_a, sys_a), (ds_b, sys_b) = fresh_pair()
        merger = MapMerger(sys_a.map, sys_a.database, ds_a.camera)
        result = merger.merge_maps(sys_b.map, client_id=1)
        assert result.success
        assert result.ba_stats is not None
        assert result.ba_stats.n_keyframes >= 2
