"""Tests for GPU latency models, the sharing scheduler and real kernels."""

import numpy as np
import pytest

from repro.gpu import (
    GpuScheduler,
    TrackingLatencyModel,
    time_fast_kernels,
    time_search_kernels,
)
from repro.net import SimClock
from repro.slam.tracking import TrackingWorkload


def _workload(stereo_pixels=False):
    # Values measured from our tracker on EuRoC/KITTI-like runs.
    return TrackingWorkload(
        image_pixels=752 * 480,
        n_features=300,
        n_local_points=600,
        candidate_pairs=100_000,
        pnp_iterations=6,
        n_matches=250,
    )


class TestTrackingLatencyModel:
    def test_cpu_breakdown_matches_fig5_shape(self):
        """Fig. 5: extraction >50%, search ~30%, total >34 ms on CPU."""
        model = TrackingLatencyModel()
        b = model.breakdown(_workload(), stereo=False, device="cpu")
        assert b.total > 34.0
        assert b.orb_extraction / b.total > 0.50
        assert 0.15 < b.search_local_points / b.total < 0.45

    def test_gpu_reduction_matches_fig8(self):
        """Fig. 8: ~40% reduction mono, >50% stereo; <33 ms total."""
        model = TrackingLatencyModel()
        w = _workload()
        cpu_mono = model.breakdown(w, stereo=False, device="cpu").total
        gpu_mono = model.breakdown(w, stereo=False, device="gpu").total
        cpu_stereo = model.breakdown(w, stereo=True, device="cpu").total
        gpu_stereo = model.breakdown(w, stereo=True, device="gpu").total
        assert 1 - gpu_mono / cpu_mono > 0.35
        assert 1 - gpu_stereo / cpu_stereo > 0.50
        assert gpu_mono < 33.0 and gpu_stereo < 33.0

    def test_stereo_doubles_extraction(self):
        model = TrackingLatencyModel()
        w = _workload()
        mono = model.breakdown(w, stereo=False, device="cpu")
        stereo = model.breakdown(w, stereo=True, device="cpu")
        assert stereo.orb_extraction == pytest.approx(2 * mono.orb_extraction)

    def test_gpu_share_slows_kernels_only_past_saturation(self):
        model = TrackingLatencyModel()
        w = _workload()
        full = model.breakdown(w, device="gpu", gpu_share=1.0)
        quarter = model.breakdown(w, device="gpu", gpu_share=0.25)
        eighth = model.breakdown(w, device="gpu", gpu_share=1.0 / 8)
        # Up to the saturation point (4 clients) per-stream rate holds.
        assert quarter.orb_extraction == pytest.approx(full.orb_extraction)
        # Beyond it, kernels slow down.
        assert eighth.orb_extraction > full.orb_extraction
        # Non-kernel stages unaffected.
        assert eighth.orb_matching == full.orb_matching

    def test_invalid_args(self):
        model = TrackingLatencyModel()
        with pytest.raises(ValueError):
            model.breakdown(_workload(), device="tpu")
        with pytest.raises(ValueError):
            model.breakdown(_workload(), device="gpu", gpu_share=0.0)

    def test_breakdown_dict(self):
        b = TrackingLatencyModel().breakdown(_workload(), device="cpu")
        d = b.as_dict()
        assert d["total"] == pytest.approx(b.total)
        assert set(d) == {
            "orb_extraction", "orb_matching", "pose_prediction",
            "search_local_points", "pnp", "total",
        }


class TestGpuScheduler:
    def test_spatial_sharing_starts_immediately(self):
        clock = SimClock()
        sched = GpuScheduler(clock, mode="spatial", n_clients=2)
        r1 = sched.submit(0, 0.010)
        r2 = sched.submit(1, 0.010)
        assert r1.started_at == r2.started_at == 0.0
        # Below saturation both run at full per-stream rate, concurrently.
        assert r1.finished_at == pytest.approx(0.010)
        # Past saturation, rates degrade.
        crowded = GpuScheduler(clock, mode="spatial", n_clients=8)
        r3 = crowded.submit(0, 0.010)
        assert r3.finished_at - r3.started_at == pytest.approx(0.020)

    def test_temporal_sharing_queues(self):
        clock = SimClock()
        sched = GpuScheduler(clock, mode="temporal", n_clients=2)
        r1 = sched.submit(0, 0.010)
        r2 = sched.submit(1, 0.010)
        assert r1.finished_at == pytest.approx(0.010)
        assert r2.started_at == pytest.approx(0.010)
        assert r2.queue_delay == pytest.approx(0.010)

    def test_spatial_beats_temporal_tail_under_contention(self):
        """The GSlice ablation: spatial sharing bounds tail latency when
        several clients submit at once."""

        def run(mode):
            clock = SimClock()
            sched = GpuScheduler(clock, mode=mode, n_clients=4)
            for t in range(30):
                clock.schedule(
                    t * 0.001,
                    lambda s=sched: [s.submit(c, 0.005) for c in range(4)],
                )
            clock.run()
            return sched.p99_latency()

        assert run("spatial") < run("temporal")

    def test_callback_scheduled(self):
        clock = SimClock()
        sched = GpuScheduler(clock, mode="temporal")
        done = []
        sched.submit(0, 0.004, on_done=lambda: done.append(clock.now))
        clock.run()
        assert done == [pytest.approx(0.004)]

    def test_invalid_args(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            GpuScheduler(clock, mode="quantum")
        with pytest.raises(ValueError):
            GpuScheduler(clock, n_clients=0)

    def test_mean_latency_per_client(self):
        clock = SimClock()
        sched = GpuScheduler(clock, mode="temporal")
        sched.submit(0, 0.010)
        sched.submit(1, 0.010)
        assert sched.mean_latency(0) < sched.mean_latency(1)


class TestRealKernels:
    def test_vectorized_fast_is_faster(self):
        rng = np.random.default_rng(0)
        image = rng.integers(0, 256, size=(96, 128), dtype=np.uint8)
        timing = time_fast_kernels(image, repeats=1)
        assert timing.speedup > 3.0

    def test_vectorized_search_is_faster(self):
        timing = time_search_kernels(n_points=200, n_features=150, repeats=1)
        # Machine-dependent; the point is a clear win for the
        # data-parallel formulation, not a specific factor.
        assert timing.speedup > 1.2
