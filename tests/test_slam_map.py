"""Tests for the map data structures and id allocation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Sim3
from repro.slam import CLIENT_ID_STRIDE, IdAllocator
from tests.test_net_serialization_transport import make_map


class TestIdAllocator:
    def test_sequential(self):
        alloc = IdAllocator(0)
        assert [alloc.allocate() for _ in range(3)] == [0, 1, 2]

    def test_client_ranges_disjoint(self):
        a = IdAllocator(0)
        b = IdAllocator(1)
        ids_a = {a.allocate() for _ in range(100)}
        ids_b = {b.allocate() for _ in range(100)}
        assert not (ids_a & ids_b)

    def test_owner_of(self):
        alloc = IdAllocator(3)
        assert IdAllocator.owner_of(alloc.allocate()) == 3

    def test_negative_client_rejected(self):
        with pytest.raises(ValueError):
            IdAllocator(-1)

    @given(st.integers(min_value=0, max_value=50), st.integers(min_value=0, max_value=50))
    @settings(max_examples=20, deadline=None)
    def test_property_cross_client_uniqueness(self, c1, c2):
        if c1 == c2:
            return
        assert IdAllocator(c1).allocate() != IdAllocator(c2).allocate()


class TestSlamMap:
    def test_add_and_counts(self):
        slam_map = make_map(n_keyframes=3, n_points_per_kf=5)
        assert slam_map.n_keyframes == 3
        assert slam_map.n_mappoints == 15

    def test_duplicate_keyframe_rejected(self):
        slam_map = make_map(n_keyframes=1)
        kf = next(iter(slam_map.keyframes.values()))
        with pytest.raises(ValueError):
            slam_map.add_keyframe(kf)

    def test_covisibility_via_shared_points(self):
        slam_map = make_map(n_keyframes=2, n_points_per_kf=6, seed=1)
        kfs = sorted(slam_map.keyframes)
        # Make kf1 observe 3 points of kf0.
        kf0, kf1 = slam_map.keyframes[kfs[0]], slam_map.keyframes[kfs[1]]
        for i in range(3):
            pid = int(kf0.point_ids[i])
            kf1.point_ids[i] = pid
            slam_map.mappoints[pid].add_observation(kf1.keyframe_id, i)
        slam_map.rebuild_covisibility()
        assert slam_map.covisibility.has_edge(kfs[0], kfs[1])
        assert slam_map.covisibility[kfs[0]][kfs[1]]["weight"] == 3
        assert slam_map.covisible_keyframes(kfs[0]) == [kfs[1]]

    def test_remove_keyframe_clears_observations(self):
        slam_map = make_map(n_keyframes=2, seed=2)
        kf_id = next(iter(slam_map.keyframes))
        kf = slam_map.keyframes[kf_id]
        observed = [int(p) for p in kf.observed_point_ids()]
        slam_map.remove_keyframe(kf_id)
        assert kf_id not in slam_map.keyframes
        for pid in observed:
            assert kf_id not in slam_map.mappoints[pid].observations

    def test_remove_mappoint_clears_keyframe_refs(self):
        slam_map = make_map(n_keyframes=1, seed=3)
        kf = next(iter(slam_map.keyframes.values()))
        pid = int(kf.point_ids[0])
        slam_map.remove_mappoint(pid)
        assert pid not in slam_map.mappoints
        assert kf.point_ids[0] == -1

    def test_replace_mappoint_fuses_observations(self):
        slam_map = make_map(n_keyframes=2, seed=4)
        kfs = sorted(slam_map.keyframes)
        kf0 = slam_map.keyframes[kfs[0]]
        kf1 = slam_map.keyframes[kfs[1]]
        old_id = int(kf0.point_ids[0])
        new_id = int(kf1.point_ids[0])
        slam_map.replace_mappoint(old_id, new_id)
        assert old_id not in slam_map.mappoints
        assert kf0.point_ids[0] == new_id
        assert kfs[0] in slam_map.mappoints[new_id].observations

    def test_replace_same_id_noop(self):
        slam_map = make_map(n_keyframes=1, seed=5)
        pid = next(iter(slam_map.mappoints))
        slam_map.replace_mappoint(pid, pid)
        assert pid in slam_map.mappoints

    def test_local_map_points_oldest_first(self):
        slam_map = make_map(n_keyframes=3, seed=6)
        points = slam_map.local_map_points(sorted(slam_map.keyframes, reverse=True))
        ids = [p.point_id for p in points]
        assert ids == sorted(ids)

    def test_local_map_points_limit(self):
        slam_map = make_map(n_keyframes=3, n_points_per_kf=10, seed=7)
        points = slam_map.local_map_points(slam_map.keyframes, limit=5)
        assert len(points) == 5

    def test_keyframes_of_client(self):
        slam_map = make_map(n_keyframes=2, client_id=1, seed=8)
        assert len(slam_map.keyframes_of_client(1)) == 2
        assert slam_map.keyframes_of_client(0) == []

    def test_apply_transform_to_client(self):
        slam_map = make_map(n_keyframes=2, client_id=1, seed=9)
        transform = Sim3(np.eye(3), np.array([10.0, 0.0, 0.0]), 1.0)
        before = {
            pid: p.position.copy() for pid, p in slam_map.mappoints.items()
        }
        centers_before = {
            kid: kf.camera_center().copy() for kid, kf in slam_map.keyframes.items()
        }
        slam_map.apply_transform_to_client(transform, client_id=1)
        for pid, p in slam_map.mappoints.items():
            assert np.allclose(p.position, before[pid] + [10, 0, 0])
        for kid, kf in slam_map.keyframes.items():
            assert np.allclose(
                kf.camera_center(), centers_before[kid] + [10, 0, 0], atol=1e-9
            )

    def test_detach_client_preserves_objects(self):
        slam_map = make_map(n_keyframes=2, client_id=1, seed=10)
        kf = next(iter(slam_map.keyframes.values()))
        point_ids_before = kf.point_ids.copy()
        obs_before = dict(
            slam_map.mappoints[int(kf.point_ids[0])].observations
        )
        slam_map.detach_client(1)
        assert slam_map.n_keyframes == 0
        assert slam_map.n_mappoints == 0
        # Shared objects untouched (a failed merge must not corrupt them).
        assert np.array_equal(kf.point_ids, point_ids_before)
        assert obs_before  # observations not cleared

    def test_keyframe_trajectory_sorted(self):
        slam_map = make_map(n_keyframes=4, seed=11)
        traj = slam_map.keyframe_trajectory()
        times = traj.timestamps
        assert np.all(np.diff(times) > 0)

    def test_nbytes_positive_and_growing(self):
        small = make_map(n_keyframes=1, seed=12).nbytes()
        large = make_map(n_keyframes=4, seed=12).nbytes()
        assert 0 < small < large

    def test_stride_large_enough_for_long_runs(self):
        # 10M ids per client: a 75 s trace at 30 FPS creates ~300
        # keyframes and ~50k points; huge headroom.
        assert CLIENT_ID_STRIDE >= 1_000_000
