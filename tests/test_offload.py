"""Adaptive client<->server offloading: controller, manager, session.

Covers the PR's tentpole behaviors: hysteresis (offload high / return
low thresholds), cooldown and flap suppression, SLO edge-event driven
transitions, shed-horizon expiry, the reliable handoff message flow
(placement flips at delivery, IMU anchor rides along, zero frames
dropped), overload degradation to on-device tracking, and the
would-be-placement trace emitted even under static policies.
"""

from types import SimpleNamespace

import pytest

from repro.core import (
    ClientScenario,
    OffloadConfig,
    OffloadController,
    OffloadManager,
    PLACEMENT_CLIENT,
    PLACEMENT_SERVER,
    PlacementDecision,
    SlamShareConfig,
    SlamShareSession,
)
from repro.datasets import euroc_dataset
from repro.gpu.device import CpuCostModel
from repro.net.tc import PROFILE_DELAY_300MS
from repro.obs import get_tracer

STRONG_CPU = CpuCostModel(pixel_ns=70.0, pair_ns=40.0,
                          feature_match_ns=1500.0)


def _slo_event(kind: str, name: str = "frame.p95_ms"):
    """A minimal breach/recover edge (controller reads kind + spec name)."""
    return SimpleNamespace(
        kind=kind, status=SimpleNamespace(spec=SimpleNamespace(name=name)))


def _adaptive(**overrides) -> OffloadController:
    config = OffloadConfig(policy="adaptive", **overrides)
    return OffloadController(client_id=0, config=config)


def _feed_rtt(ctrl: OffloadController, rtt_ms: float, t: float,
              n: int = None) -> None:
    for i in range(n or ctrl.config.min_samples):
        ctrl.observe_rtt(rtt_ms, t + 0.01 * i)


class TestOffloadConfig:
    def test_defaults_are_static_server(self):
        config = OffloadConfig()
        assert config.policy == "static-server"
        assert config.initial_placement == PLACEMENT_SERVER
        assert not config.is_adaptive

    def test_static_client_initial_placement(self):
        assert (OffloadConfig(policy="static-client").initial_placement
                == PLACEMENT_CLIENT)

    @pytest.mark.parametrize("bad", [
        {"policy": "cloud"},
        {"rtt_high_ms": 40.0, "rtt_low_ms": 45.0},
        {"load_high": 0.4, "load_low": 0.5},
        {"cooldown_s": -1.0},
        {"min_samples": 0},
    ])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            OffloadConfig(**bad)


class TestControllerHysteresis:
    def test_offloads_when_rtt_exceeds_high(self):
        ctrl = _adaptive()
        _feed_rtt(ctrl, 200.0, t=1.0)
        decision = ctrl.decide(t=1.1, server_load=0.0)
        assert decision is not None
        assert decision.placement == PLACEMENT_CLIENT
        assert decision.reason == "rtt"

    def test_no_decision_below_min_samples(self):
        ctrl = _adaptive()
        ctrl.observe_rtt(500.0, 1.0)
        assert ctrl.decide(t=1.1, server_load=0.0) is None

    def test_no_return_in_hysteresis_band(self):
        """RTT between low and high: a client-placed tracker stays put
        (that gap is exactly what prevents flapping)."""
        ctrl = _adaptive()
        ctrl.placement = PLACEMENT_CLIENT
        _feed_rtt(ctrl, 60.0, t=10.0)   # 45 < 60 < 80
        assert ctrl.decide(t=10.1, server_load=0.0) is None

    def test_returns_only_when_all_signals_healthy(self):
        ctrl = _adaptive()
        ctrl.placement = PLACEMENT_CLIENT
        ctrl.last_change_t = 0.0
        _feed_rtt(ctrl, 20.0, t=10.0)
        decision = ctrl.decide(t=10.1, server_load=0.1)
        assert decision is not None
        assert decision.placement == PLACEMENT_SERVER
        assert decision.reason == "recovered"
        # Same RTT but elevated load: stay on the device.
        assert ctrl.decide(t=10.2, server_load=0.6) is None

    def test_load_triggers_offload(self):
        ctrl = _adaptive()
        _feed_rtt(ctrl, 10.0, t=1.0)
        decision = ctrl.decide(t=1.1, server_load=0.9)
        assert decision is not None and decision.reason == "load"

    def test_shed_fraction_triggers_offload(self):
        ctrl = _adaptive()
        for i in range(6):
            ctrl.observe_admission(i % 2 == 0, t=1.0 + 0.1 * i)  # 50% shed
        decision = ctrl.decide(t=1.7, server_load=0.0)
        assert decision is not None and decision.reason == "shed"

    def test_shed_samples_expire_after_horizon(self):
        """Once tracking leaves the server no admission samples arrive;
        old sheds must expire or the client could never return."""
        ctrl = _adaptive()
        for i in range(8):
            ctrl.observe_admission(False, t=1.0 + 0.1 * i)
        assert ctrl.shed_fraction(t=2.0) == 1.0
        horizon = ctrl.config.shed_horizon_s
        assert ctrl.shed_fraction(t=2.0 + horizon + 1.0) is None


class TestControllerDamping:
    def test_cooldown_suppresses_consecutive_moves(self):
        ctrl = _adaptive(cooldown_s=2.0)
        _feed_rtt(ctrl, 200.0, t=1.0)
        decision = ctrl.decide(t=1.1, server_load=0.0)
        ctrl.commit(decision, t=1.1)
        # Immediately healthy again — but the cooldown holds placement.
        _feed_rtt(ctrl, 10.0, t=1.2, n=ctrl.config.rtt_window)
        assert ctrl.in_cooldown(2.0)
        assert ctrl.decide(t=2.0, server_load=0.0) is None
        assert ctrl.decide(t=3.2, server_load=0.0) is not None

    def test_no_decision_while_handoff_in_flight(self):
        ctrl = _adaptive()
        _feed_rtt(ctrl, 200.0, t=1.0)
        ctrl.begin(PLACEMENT_CLIENT)
        assert ctrl.decide(t=1.1, server_load=0.0) is None

    def test_flapping_link_commits_bounded_by_cooldown(self):
        """An RTT square wave flipping every 0.25 s for 10 s: committed
        placement changes are bounded by duration/cooldown, not by the
        flap rate."""
        ctrl = _adaptive(cooldown_s=2.0)
        t, commits = 0.0, 0
        while t < 10.0:
            bad = int(t / 0.25) % 2 == 0
            ctrl.observe_rtt(600.0 if bad else 10.0, t)
            decision = ctrl.decide(t, server_load=0.0)
            if decision is not None:
                ctrl.commit(decision, t)
                commits += 1
            t += 0.05
        assert commits <= 10.0 / 2.0 + 1

    def test_abort_arms_cooldown(self):
        ctrl = _adaptive(cooldown_s=2.0)
        ctrl.begin(PLACEMENT_CLIENT)
        ctrl.abort(t=5.0)
        assert ctrl.pending is None
        assert ctrl.placement == PLACEMENT_SERVER
        assert ctrl.in_cooldown(6.9)

    def test_static_policies_never_decide(self):
        for policy in ("static-server", "static-client"):
            ctrl = OffloadController(0, OffloadConfig(policy=policy))
            _feed_rtt(ctrl, 900.0, t=1.0)
            ctrl.on_slo_event(_slo_event("breach"))
            assert ctrl.decide(t=1.1, server_load=1.0) is None


class TestSloDrivenTransitions:
    def test_breach_triggers_offload(self):
        ctrl = _adaptive()
        _feed_rtt(ctrl, 10.0, t=1.0)     # link itself is fine
        ctrl.on_slo_event(_slo_event("breach"))
        decision = ctrl.decide(t=1.1, server_load=0.0)
        assert decision is not None
        assert decision.placement == PLACEMENT_CLIENT
        assert decision.reason == "slo"

    def test_recover_enables_return(self):
        ctrl = _adaptive()
        ctrl.on_slo_event(_slo_event("breach"))
        decision = ctrl.decide(t=1.1, server_load=0.0)
        assert decision is not None and decision.reason == "slo"
        ctrl.commit(decision, t=1.1)
        _feed_rtt(ctrl, 10.0, t=10.0)
        # Still breached: no return, even after the cooldown.
        assert ctrl.decide(t=10.0, server_load=0.0) is None
        ctrl.on_slo_event(_slo_event("recover"))
        decision = ctrl.decide(t=10.1, server_load=0.0)
        assert decision is not None
        assert decision.placement == PLACEMENT_SERVER

    def test_distinct_slos_tracked_independently(self):
        ctrl = _adaptive()
        ctrl.on_slo_event(_slo_event("breach", "frame.p95_ms"))
        ctrl.on_slo_event(_slo_event("breach", "frames.shed_rate"))
        ctrl.on_slo_event(_slo_event("recover", "frame.p95_ms"))
        assert ctrl.slo_breached          # shed_rate still breached

    def test_shadow_decision_under_static_policy(self):
        ctrl = OffloadController(0, OffloadConfig())
        _feed_rtt(ctrl, 600.0, t=1.0)
        assert ctrl.shadow_decision(1.1, server_load=0.0) == PLACEMENT_CLIENT
        ctrl2 = OffloadController(1, OffloadConfig())
        assert ctrl2.shadow_decision(1.1, server_load=0.0) == PLACEMENT_SERVER


class TestOffloadManager:
    def test_ledger_commit_and_abort(self):
        manager = OffloadManager(OffloadConfig(policy="adaptive"))
        decision = PlacementDecision(0, PLACEMENT_CLIENT, "rtt", 1.0)
        record = manager.begin_handoff(decision, imu_anchor_ts=0.9)
        assert record.src == PLACEMENT_SERVER
        assert record.dst == PLACEMENT_CLIENT
        assert record.imu_anchor_ts == 0.9
        assert not record.committed
        assert manager.controller(0).pending == PLACEMENT_CLIENT
        manager.commit_handoff(record, t=1.3)
        assert record.committed and record.committed_at == 1.3
        assert manager.placement(0) == PLACEMENT_CLIENT
        # A later return attempt that dies on the link.
        back = manager.begin_handoff(
            PlacementDecision(0, PLACEMENT_SERVER, "recovered", 5.0),
            imu_anchor_ts=4.9)
        manager.abort_handoff(back, t=5.5)
        assert back.aborted and not back.committed
        assert manager.placement(0) == PLACEMENT_CLIENT
        summary = manager.summary()
        assert summary["handoffs"] == 1
        assert summary["handoffs_aborted"] == 1
        assert summary["reasons"] == ["rtt"]
        assert summary["placements"] == {0: PLACEMENT_CLIENT}

    def test_slo_events_fan_out_to_all_controllers(self):
        manager = OffloadManager(OffloadConfig(policy="adaptive"))
        manager.controller(0)
        manager.controller(1)
        manager.on_slo_event(_slo_event("breach"))
        assert manager.controller(0).slo_breached
        assert manager.controller(1).slo_breached


def _session(policy: str, duration: float = 10.0, shaping=None,
             device_cpu=STRONG_CPU):
    dataset = euroc_dataset("MH04", duration=duration, rate=10.0)
    config = SlamShareConfig(camera_fps=10.0, render_video_frames=False)
    config.serving.offload.policy = policy
    return SlamShareSession(
        [ClientScenario(0, dataset, shaping=shaping, device_cpu=device_cpu)],
        config,
    )


class TestSessionIntegration:
    def test_bad_link_migrates_tracking_to_client(self):
        """300 ms of added delay (~640 ms round trips) drives a handoff;
        after it commits frames are tracked on-device and the migration
        carries the IMU anchor."""
        session = _session("adaptive", shaping=PROFILE_DELAY_300MS)
        result = session.run()
        outcome = result.outcomes[0]
        committed = result.offload.committed_handoffs()
        assert len(committed) >= 1
        first = committed[0]
        assert first.src == PLACEMENT_SERVER
        assert first.dst == PLACEMENT_CLIENT
        assert first.reason == "rtt"
        assert first.imu_anchor_ts is not None
        assert outcome.frames_local > 0
        assert result.offload.placement(0) == PLACEMENT_CLIENT
        assert result.client_ate(0).rmse < 0.15

    def test_no_frame_dropped_across_handoff(self):
        """The zero-gap ledger: every captured frame is processed,
        provably superseded, or offline — never silently lost."""
        session = _session("adaptive", shaping=PROFILE_DELAY_300MS)
        result = session.run()
        outcome = result.outcomes[0]
        assert outcome.frames_shed == 0
        assert outcome.uplink_drops == 0
        assert (outcome.frames_processed + outcome.frames_superseded
                + outcome.frames_offline) == outcome.frames_captured

    def test_link_recovery_returns_tracking_to_server(self):
        """Delay lifts mid-run: probes observe the clean link and the
        controller migrates tracking back (both directions exercised)."""
        session = _session("adaptive", duration=14.0,
                           shaping=PROFILE_DELAY_300MS)

        def heal():
            link = session._links[0]
            link.uplink.delay_s = 0.0
            link.downlink.delay_s = 0.0

        session.clock.schedule_at(5.0, heal)
        result = session.run()
        committed = result.offload.committed_handoffs()
        assert {h.dst for h in committed} == {PLACEMENT_CLIENT,
                                             PLACEMENT_SERVER}
        back = [h for h in committed if h.dst == PLACEMENT_SERVER][0]
        assert back.reason == "recovered"
        assert result.offload.placement(0) == PLACEMENT_SERVER
        assert result.client_ate(0).rmse < 0.15

    def test_static_policies_never_handoff(self):
        for policy in ("static-server", "static-client"):
            result = _session(policy).run()
            assert result.offload.handoffs == []
            outcome = result.outcomes[0]
            if policy == "static-client":
                assert outcome.frames_local == outcome.frames_captured > 0
            else:
                assert outcome.frames_local == 0

    def test_manual_handoff_any_policy(self):
        session = _session("static-server")
        session.clock.schedule_at(
            3.0, lambda: session.request_handoff(0, PLACEMENT_CLIENT))
        result = session.run()
        committed = result.offload.committed_handoffs()
        assert len(committed) == 1
        assert committed[0].reason == "manual"
        assert committed[0].imu_anchor_ts is not None
        assert result.outcomes[0].handoffs == 1
        assert result.outcomes[0].frames_local > 0

    def test_manual_handoff_noop_when_already_there(self):
        session = _session("static-server", duration=4.0)
        results = []
        session.clock.schedule_at(
            2.0,
            lambda: results.append(
                session.request_handoff(0, PLACEMENT_SERVER)))
        session.run()
        assert results == [None]

    def test_manual_handoff_validates_input(self):
        session = _session("static-server")
        with pytest.raises(ValueError):
            session.request_handoff(0, "edge")
        with pytest.raises(ValueError):
            session.request_handoff(99, PLACEMENT_CLIENT)


class TestWouldPlaceTrace:
    def test_overload_emits_would_place_even_under_static_policy(self):
        """The admission overload path reports the would-be adaptive
        placement to the tracer even with the controller disabled, so
        static runs still show what adaptive would have done."""
        tracer = get_tracer()
        tracer.reset()
        tracer.configure(enabled=True)
        try:
            session = _session("static-server", duration=4.0)
            depth = session.config.serving.queue_depth

            def hog():
                for _ in range(depth):
                    session.server.try_admit(0)

            session.clock.schedule_at(1.0, hog)
            session.clock.schedule_at(
                2.0,
                lambda: [session.server.release_frame(0)
                         for _ in range(depth)])
            result = session.run()
            assert result.outcomes[0].frames_shed > 0   # static: discarded
            spans = [s for s in tracer.spans
                     if s.name == "offload.would_place"]
            assert spans, "overload must emit the would-be placement"
            assert spans[0].attrs["placement"] == PLACEMENT_CLIENT
            assert spans[0].attrs["adaptive"] is False
        finally:
            tracer.configure(enabled=False)
            tracer.reset()

    def test_overload_degrades_to_device_under_adaptive(self):
        """Same spike under the adaptive policy: frames degrade to
        on-device tracking instead of being discarded."""
        session = _session("adaptive", duration=6.0)
        depth = session.config.serving.queue_depth

        def hog():
            for _ in range(depth):
                session.server.try_admit(0)

        session.clock.schedule_at(1.0, hog)
        session.clock.schedule_at(
            2.0,
            lambda: [session.server.release_frame(0) for _ in range(depth)])
        result = session.run()
        outcome = result.outcomes[0]
        assert outcome.frames_shed == 0
        assert outcome.frames_degraded > 0
        committed = result.offload.committed_handoffs()
        assert any(h.reason in ("shed", "load") for h in committed)
