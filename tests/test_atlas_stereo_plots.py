"""Tests for the Atlas, real stereo matching, and terminal plots."""

import numpy as np
import pytest

from repro.datasets import euroc_dataset
from repro.geometry import Trajectory
from repro.metrics import ascii_series, ascii_xy_plot, trajectory_topdown
from repro.slam import Atlas, default_vocabulary
from repro.vision import StereoMatcher, StereoRig, render_stereo_pair
from tests.test_slam_merging import build_two_clients

VOCAB = default_vocabulary()


class TestAtlas:
    def test_create_and_activate(self):
        atlas = Atlas(VOCAB)
        m0 = atlas.create_map("first")
        m1 = atlas.create_map("second")
        assert len(atlas) == 2
        assert atlas.active_map is m1
        atlas.set_active(m0.map_id)
        assert atlas.active_map is m0

    def test_unknown_map_rejected(self):
        atlas = Atlas(VOCAB)
        with pytest.raises(KeyError):
            atlas.set_active(99)

    def test_lookup_by_entity(self):
        atlas = Atlas(VOCAB)
        (ds_a, sys_a), (ds_b, sys_b) = build_two_clients(duration=8.0)
        id_a = atlas.adopt(sys_a.map, sys_a.database, "client-a")
        id_b = atlas.adopt(sys_b.map, sys_b.database, "client-b")
        kf_a = next(iter(sys_a.map.keyframes))
        kf_b = next(iter(sys_b.map.keyframes))
        assert atlas.map_of_keyframe(kf_a) == id_a
        assert atlas.map_of_keyframe(kf_b) == id_b
        assert atlas.map_of_keyframe(10**9 + 5) is None
        pid_b = next(iter(sys_b.map.mappoints))
        assert atlas.map_of_point(pid_b) == id_b

    def test_merge_members_removes_source(self):
        atlas = Atlas(VOCAB)
        (ds_a, sys_a), (ds_b, sys_b) = build_two_clients(duration=10.0)
        id_a = atlas.adopt(sys_a.map, sys_a.database, "client-a")
        id_b = atlas.adopt(sys_b.map, sys_b.database, "client-b")
        total_before = atlas.total_keyframes()
        result = atlas.merge_members(id_a, id_b, ds_a.camera, source_client=1)
        assert result.success
        assert len(atlas) == 1
        assert atlas.active_map is sys_a.map
        assert atlas.total_keyframes() == total_before

    def test_merge_failure_leaves_members(self):
        atlas = Atlas(VOCAB)
        (ds_a, sys_a), _ = build_two_clients(duration=8.0)
        from tests.test_slam_system import run_system

        ds_v = euroc_dataset("V202", duration=5.0, rate=10.0)
        sys_v, _ = run_system(ds_v, client_id=1)
        id_a = atlas.adopt(sys_a.map, sys_a.database, "a")
        id_v = atlas.adopt(sys_v.map, sys_v.database, "v")
        result = atlas.merge_members(id_a, id_v, ds_a.camera, source_client=1)
        assert not result.success
        assert len(atlas) == 2
        assert not sys_a.map.keyframes_of_client(1)

    def test_self_merge_rejected(self):
        atlas = Atlas(VOCAB)
        m = atlas.create_map()
        cam = euroc_dataset("MH04", duration=1.0, rate=10.0).camera
        with pytest.raises(ValueError):
            atlas.merge_members(m.map_id, m.map_id, cam, 0)

    def test_summary_mentions_labels(self):
        atlas = Atlas(VOCAB)
        atlas.create_map("hall")
        assert "hall" in atlas.summary()


class TestStereoMatcher:
    @pytest.fixture(scope="class")
    def scene(self):
        ds = euroc_dataset("MH04", duration=1.0, rate=10.0)
        rig = StereoRig(ds.camera, baseline=0.11)
        left, right = render_stereo_pair(
            ds.world.positions, ds.world.ids, rig, ds.pose_cw(0),
            rng=np.random.default_rng(3),
        )
        return ds, rig, left, right

    def test_matches_found(self, scene):
        ds, rig, left, right = scene
        matches = StereoMatcher(rig).match(left, right)
        assert len(matches) > 10

    def test_depths_match_geometry(self, scene):
        """Recovered depths agree with the true landmark depths."""
        ds, rig, left, right = scene
        matches = StereoMatcher(rig).match(left, right)
        uv_true, depth_true, valid = ds.camera.project_world(
            ds.world.positions, ds.pose_cw(0)
        )
        uv_true = uv_true[valid]
        depth_true = depth_true[valid]
        errors = []
        for m in matches:
            d = np.linalg.norm(uv_true - m.uv_left, axis=1)
            nearest = int(np.argmin(d))
            if d[nearest] < 3.0:
                errors.append(
                    abs(m.depth - depth_true[nearest]) / depth_true[nearest]
                )
        assert len(errors) > 5
        assert np.median(errors) < 0.15  # ~1 px disparity quantization

    def test_disparity_positive(self, scene):
        ds, rig, left, right = scene
        for m in StereoMatcher(rig).match(left, right):
            assert m.disparity > 0
            assert m.depth > 0

    def test_empty_images(self, scene):
        ds, rig, _, _ = scene
        from repro.vision import Image

        blank = Image(np.full((120, 160), 110, dtype=np.uint8))
        assert StereoMatcher(rig).match(blank, blank) == []


class TestAsciiPlots:
    def test_xy_plot_renders_all_labels(self):
        rng = np.random.default_rng(0)
        art = ascii_xy_plot(
            {"a": rng.normal(size=(20, 2)), "b": rng.normal(size=(10, 2))}
        )
        assert "* a" in art and "o b" in art
        assert art.count("\n") > 10

    def test_xy_plot_empty(self):
        assert ascii_xy_plot({}) == "(no data)"

    def test_series_bars_scale(self):
        art = ascii_series([(0.0, 1.0), (1.0, 2.0), (2.0, 4.0)])
        lines = art.splitlines()
        assert lines[-1].count("#") > lines[0].count("#")

    def test_series_handles_inf(self):
        art = ascii_series([(0.0, float("inf")), (1.0, 1.0)])
        assert "inf" in art

    def test_trajectory_topdown(self):
        times = np.arange(10) * 0.1
        pos = np.column_stack([times, times ** 2, np.zeros(10)])
        traj = Trajectory.from_arrays(times, pos)
        art = trajectory_topdown(traj, traj)
        assert "estimated" in art and "ground truth" in art
