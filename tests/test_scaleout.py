"""Scale-out serving layer: sharded store, micro-batching, admission.

Covers the PR-4 tentpole: spatial sharding with per-shard RW locks and
ordered multi-shard write transactions (deadlock-freedom under real
threads and under SimClock-driven interleavings), cross-client GPU
micro-batching (coalescing, fairness, p99-budget fallback, reset), and
admission control / load shedding in the server and session.
"""

import threading

import numpy as np
import pytest

from repro.core import ClientScenario, ServingConfig, SlamShareConfig, SlamShareSession
from repro.core.server import SlamShareServer
from repro.datasets import euroc_dataset
from repro.gpu import BatchingConfig, GpuScheduler
from repro.net.simclock import SimClock
from repro.sharedmem import ShardedMapStore, SharedMapStore, spatial_shard
from tests.test_net_serialization_transport import make_map


def _sharded(n_shards=8, capacity=8 * 1024 * 1024, region=8.0):
    return ShardedMapStore(n_shards=n_shards, capacity=capacity,
                           region_size=region)


class TestSpatialSharding:
    def test_deterministic_assignment(self):
        pos = (12.3, -4.5, 6.7)
        assert spatial_shard(pos, 8.0, 16) == spatial_shard(pos, 8.0, 16)
        assert 0 <= spatial_shard(pos, 8.0, 16) < 16

    def test_same_region_same_shard(self):
        # Two positions in the same grid cell land together.
        assert (spatial_shard((1.0, 1.0, 1.0), 8.0, 16)
                == spatial_shard((2.0, 3.0, 4.0), 8.0, 16))

    def test_regions_spread_across_shards(self):
        rng = np.random.default_rng(3)
        shards = {
            spatial_shard(rng.uniform(-100, 100, 3), 8.0, 16)
            for _ in range(200)
        }
        assert len(shards) > 8  # spatial hash actually spreads load

    def test_put_get_roundtrip(self):
        store = _sharded()
        slam_map = make_map(n_keyframes=4, seed=5)
        kf = next(iter(slam_map.keyframes.values()))
        point = next(iter(slam_map.mappoints.values()))
        store.put_keyframe(kf)
        store.put_mappoint(point)
        restored = store.get_keyframe(kf.keyframe_id)
        assert restored is not None
        assert np.array_equal(restored.descriptors, kf.descriptors)
        assert np.allclose(store.get_mappoint(point.point_id).position,
                           point.position)

    def test_get_missing_returns_none(self):
        store = _sharded()
        assert store.get_keyframe(404) is None
        assert store.get_mappoint(404) is None

    def test_sticky_routing_survives_position_change(self):
        store = _sharded(region=1.0)
        slam_map = make_map(seed=6)
        point = next(iter(slam_map.mappoints.values()))
        store.put_mappoint(point)
        original_shard = store._mp_shard[point.point_id]
        # Bundle adjustment moves the point far across cell boundaries.
        point.position = point.position + 500.0
        store.put_mappoint(point)
        assert store._mp_shard[point.point_id] == original_shard
        assert np.allclose(store.get_mappoint(point.point_id).position,
                           point.position)
        assert len(store.mappoint_ids()) == 1

    def test_remove_reclaims_space(self):
        store = _sharded()
        slam_map = make_map(seed=7)
        kf = next(iter(slam_map.keyframes.values()))
        store.put_keyframe(kf)
        store.remove_keyframe(kf.keyframe_id)
        assert store.get_keyframe(kf.keyframe_id) is None
        assert store.stats().arena.allocated == 0

    def test_publish_map_spans_shards(self):
        store = _sharded(region=1.0)  # tiny regions force multi-shard batches
        slam_map = make_map(n_keyframes=6, seed=8)
        written = store.publish_map(slam_map.keyframes.values(),
                                    slam_map.mappoints.values())
        assert written > 0
        stats = store.stats()
        assert stats.n_keyframes == 6
        assert stats.n_mappoints == slam_map.n_mappoints
        occupied = [row for row in store.shard_stats() if row["writes"]]
        assert len(occupied) > 1

    def test_iter_keyframes_sorted(self):
        store = _sharded()
        slam_map = make_map(n_keyframes=5, seed=9)
        store.publish_map(slam_map.keyframes.values(), [])
        ids = [kf.keyframe_id for kf in store.iter_keyframes()]
        assert ids == sorted(ids)

    def test_stats_aggregate_matches_unsharded_semantics(self):
        store = _sharded()
        slam_map = make_map(n_keyframes=3, seed=10)
        store.publish_map(slam_map.keyframes.values(),
                          slam_map.mappoints.values())
        stats = store.stats()
        assert stats.writes == 3 + slam_map.n_mappoints
        assert stats.arena.allocated > 0
        assert stats.arena.capacity > stats.arena.allocated


class TestOrderedShardLocking:
    def test_write_transaction_acquires_in_ascending_order(self):
        store = _sharded(n_shards=6)
        order = []
        for shard in store.shards:
            original = shard.lock.acquire_write

            def recording(idx=shard.index, fn=original, **kw):
                order.append(idx)
                return fn(**kw)

            shard.lock.acquire_write = recording
        with store.write_transaction([4, 1, 3, 1]):
            pass
        assert order == [1, 3, 4]

    def test_write_transaction_releases_on_error(self):
        store = _sharded(n_shards=4)
        with pytest.raises(RuntimeError):
            with store.write_transaction([0, 2]):
                raise RuntimeError("merge failed mid-weld")
        for shard in store.shards:
            assert not shard.lock.writer_active

    def test_no_deadlock_under_interleaved_threaded_merges_and_reads(self):
        """Overlapping multi-shard writers + readers all terminate."""
        store = _sharded(n_shards=4, region=1.0)
        slam_map = make_map(n_keyframes=8, n_points_per_kf=6, seed=11)
        store.publish_map(slam_map.keyframes.values(),
                          slam_map.mappoints.values())
        kf_ids = store.keyframe_ids()
        errors = []
        done = []

        def merger(seed):
            # Each merger repeatedly takes overlapping multi-shard write
            # transactions in *submission* (unsorted) order — the store
            # must still serialize them deadlock-free.
            rng = np.random.default_rng(seed)
            try:
                for _ in range(60):
                    shards = list(rng.choice(4, size=3, replace=False))
                    with store.write_transaction(shards):
                        pass
                done.append(seed)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        def reader(seed):
            rng = np.random.default_rng(seed)
            try:
                for _ in range(120):
                    store.get_keyframe(int(rng.choice(kf_ids)))
                done.append(seed)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = ([threading.Thread(target=merger, args=(s,))
                    for s in range(4)]
                   + [threading.Thread(target=reader, args=(100 + s,))
                      for s in range(4)])
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        assert len(done) == 8, "a worker deadlocked (join timed out)"
        for t in threads:
            assert not t.is_alive()

    def test_simclock_interleaved_merge_and_read_schedule(self):
        """SimClock-driven schedule interleaving publishes, multi-shard
        merge transactions and reads completes with a consistent map."""
        store = _sharded(n_shards=4, region=1.0)
        slam_map = make_map(n_keyframes=6, n_points_per_kf=4, seed=12)
        kfs = list(slam_map.keyframes.values())
        clock = SimClock()
        seen = []

        def publish(i):
            store.publish_map([kfs[i]], [])

        def merge_all():
            shards = list(range(4))
            with store.write_transaction(shards):
                pass  # merge holds every involved shard atomically

        def read(i):
            kf = store.get_keyframe(kfs[i].keyframe_id)
            seen.append(kf is not None)

        # Deliberately interleaved: publish, read-before/after, merges
        # back-to-back with publishes at identical timestamps.
        for i in range(6):
            clock.schedule_at(0.010 * i, lambda i=i: publish(i))
            clock.schedule_at(0.010 * i, lambda i=i: read(i))
            clock.schedule_at(0.010 * i + 0.005, merge_all)
            clock.schedule_at(0.010 * i + 0.006, lambda i=i: read(i))
        clock.run()
        # Reads scheduled at the same instant as their publish run after
        # it (FIFO among equal timestamps), so every read must hit.
        assert seen == [True] * 12
        assert store.stats().n_keyframes == 6

    def test_concurrent_publish_read_consistency(self):
        """Readers never see torn records while publishers update them."""
        store = _sharded(n_shards=4)
        slam_map = make_map(n_keyframes=2, n_points_per_kf=6, seed=13)
        kf = next(iter(slam_map.keyframes.values()))
        store.put_keyframe(kf)
        stop = threading.Event()
        errors = []

        def writer():
            while not stop.is_set():
                store.put_keyframe(kf)

        def reader():
            while not stop.is_set():
                restored = store.get_keyframe(kf.keyframe_id)
                if restored is None or not np.array_equal(
                        restored.descriptors, kf.descriptors):
                    errors.append("torn read")
                    return

        threads = [threading.Thread(target=writer),
                   threading.Thread(target=reader),
                   threading.Thread(target=reader)]
        for t in threads:
            t.start()
        stop.wait(0.3)
        stop.set()
        for t in threads:
            t.join(timeout=10)
        assert not errors


class TestMicroBatching:
    def _scheduler(self, clock, **overrides):
        defaults = dict(window_s=0.010, max_batch=8,
                        dispatch_overhead_s=0.001, p99_budget_s=None)
        defaults.update(overrides)
        return GpuScheduler(clock, mode="temporal",
                            batching=BatchingConfig(**defaults))

    def test_frames_within_window_coalesce_into_one_dispatch(self):
        clock = SimClock()
        sched = self._scheduler(clock)
        for c in range(4):
            clock.schedule_at(0.002 * c, lambda c=c: sched.submit(c, 0.002))
        clock.run()
        assert sched.batches_dispatched == 1
        assert all(r.batch_size == 4 for r in sched.records)
        # One dispatch: overhead paid once, all four finish together.
        finish = {r.finished_at for r in sched.records}
        assert len(finish) == 1
        assert finish.pop() == pytest.approx(0.010 + 0.001 + 4 * 0.002)

    def test_solo_mode_pays_overhead_per_kernel(self):
        clock = SimClock()
        sched = self._scheduler(clock, window_s=0.0)
        for c in range(4):
            sched.submit(c, 0.002)
        clock.run()
        assert sched.batches_dispatched == 0
        assert sched.solo_dispatches == 4
        # FIFO serialization, each dispatch pays its own overhead.
        assert sched.records[-1].finished_at == pytest.approx(4 * 0.003)

    def test_on_done_fires_at_batch_finish(self):
        clock = SimClock()
        sched = self._scheduler(clock)
        finished = []
        sched.submit(0, 0.004, on_done=lambda: finished.append(clock.now))
        sched.submit(1, 0.004, on_done=lambda: finished.append(clock.now))
        clock.run()
        assert finished == [pytest.approx(0.010 + 0.001 + 0.008)] * 2

    def test_fairness_quota_prevents_starvation_at_full_load(self):
        """A flooding client cannot crowd a trickle client out."""
        clock = SimClock()
        sched = self._scheduler(clock, max_batch=4)
        # Client 0 floods 40 kernels at t=0; client 1 submits 2.
        for _ in range(40):
            sched.submit(0, 0.001)
        for _ in range(2):
            sched.submit(1, 0.001)
        clock.run()
        by_batch = {}
        for r in sched.records:
            by_batch.setdefault(r.batch_id, []).append(r)
        first = by_batch[0]
        # Even split: the flooder gets at most ceil(4/2)=2 of the first
        # batch despite having 40 queued.
        assert sum(1 for r in first if r.client_id == 0) <= 2
        assert sum(1 for r in first if r.client_id == 1) == 2
        # The trickle client's kernels complete in the first dispatch —
        # it never waits behind the flood.
        client1 = [r for r in sched.records if r.client_id == 1]
        assert all(r.batch_id == 0 for r in client1)
        # And the flood still fully drains (no lost kernels).
        assert len([r for r in sched.records if r.client_id == 0]) == 40

    def test_p99_budget_falls_back_to_solo_on_idle_gpu(self):
        clock = SimClock()
        sched = self._scheduler(clock, p99_budget_s=0.008)
        record = sched.submit(0, 0.002)
        assert record is not None          # dispatched solo immediately
        assert sched.solo_dispatches == 1
        assert record.finished_at == pytest.approx(0.003)

    def test_p99_budget_still_batches_when_gpu_backlogged(self):
        clock = SimClock()
        sched = self._scheduler(clock, p99_budget_s=0.008)
        # Saturate the GPU: a long solo kernel occupies it well past the
        # window, so batching adds no extra wait and must be chosen.
        sched.submit(0, 0.050)
        assert sched.submit(1, 0.002) is None
        assert sched.pending_kernels() == 1
        clock.run()
        assert sched.batches_dispatched == 1

    def test_reset_clears_stats_and_pending(self):
        clock = SimClock()
        sched = self._scheduler(clock)
        sched.submit(0, 0.004)
        sched.submit(1, 0.004)
        clock.run()
        assert sched.mean_latency() > 0
        sched.submit(2, 0.004)             # left pending on purpose
        sched.reset()
        assert sched.records == []
        assert sched.mean_latency() == 0.0
        assert sched.p99_latency() == 0.0
        assert sched.pending_kernels() == 0
        assert sched.mean_batch_size == 0.0
        clock.run()                        # cancelled flush: no dispatch
        assert sched.batches_dispatched == 0

    def test_unbatched_scheduler_unchanged(self):
        clock = SimClock()
        sched = GpuScheduler(clock, mode="temporal")
        r1 = sched.submit(0, 0.010)
        r2 = sched.submit(1, 0.010)
        assert r1.finished_at == pytest.approx(0.010)
        assert r2.finished_at == pytest.approx(0.020)


class TestAdmissionControl:
    def _server(self, **serving_kw):
        from repro.vision import PinholeCamera
        config = SlamShareConfig(
            serving=ServingConfig(**serving_kw), render_video_frames=False
        )
        camera = PinholeCamera(fx=450.0, fy=450.0, cx=376.0, cy=240.0,
                               width=752, height=480)
        return SlamShareServer(camera, config)

    def test_bounded_queue_sheds_overload(self):
        server = self._server(queue_depth=2)
        server.add_client(0, np.array([0.0, 0.0, -9.81]))
        assert server.try_admit(0) == "ok"
        assert server.try_admit(0) == "ok"
        assert server.try_admit(0) == "overload"
        assert server.frames_shed_overload == 1
        server.release_frame(0)
        assert server.try_admit(0) == "ok"

    def test_stale_frames_shed(self):
        server = self._server(stale_ms=100.0)
        server.add_client(0, np.array([0.0, 0.0, -9.81]))
        assert server.try_admit(0, age_s=0.05) == "ok"
        assert server.try_admit(0, age_s=0.25) == "stale"
        assert server.frames_shed_stale == 1

    def test_load_reflects_in_flight_fraction(self):
        server = self._server(queue_depth=4)
        server.add_client(0, np.array([0.0, 0.0, -9.81]))
        assert server.load() == 0.0
        server.try_admit(0)
        server.try_admit(0)
        assert server.load() == pytest.approx(0.5)
        server.release_frame(0)
        assert server.load() == pytest.approx(0.25)

    def test_admission_disabled_never_sheds(self):
        server = self._server(admission=False, queue_depth=1)
        server.add_client(0, np.array([0.0, 0.0, -9.81]))
        for _ in range(5):
            assert server.try_admit(0) == "ok"
        assert server.frames_shed == 0

    def test_server_builds_sharded_store_from_config(self):
        server = self._server(map_shards=4)
        assert isinstance(server.store, ShardedMapStore)
        assert server.store.n_shards == 4
        unsharded = self._server(map_shards=1)
        assert isinstance(unsharded.store, SharedMapStore)


class TestSessionScaleOut:
    def _scenarios(self, duration=2.5):
        return [
            ClientScenario(0, euroc_dataset("MH04", duration=duration,
                                            rate=10.0), n_frames=20),
        ]

    def test_session_runs_with_sharded_store_and_batching(self):
        config = SlamShareConfig(
            render_video_frames=False,
            serving=ServingConfig(batching=True, batch_window_ms=4.0,
                                  p99_budget_ms=None),
        )
        session = SlamShareSession(self._scenarios(), config=config)
        result = session.run()
        outcome = result.outcomes[0]
        assert outcome.frames_processed > 0
        assert session.scheduler.batching is not None
        assert (session.scheduler.batches_dispatched
                + session.scheduler.solo_dispatches) > 0
        assert isinstance(session.server.store, ShardedMapStore)
        # Every admitted frame's slot was released.
        assert session.server.in_flight(0) == 0

    def test_session_sheds_stale_frames_and_bridges_gaps(self):
        # stale_ms=0 sheds every delivered frame: degenerate by design,
        # proving shed frames are counted and never tracked.
        config = SlamShareConfig(
            render_video_frames=False,
            serving=ServingConfig(stale_ms=-1.0),
        )
        session = SlamShareSession(self._scenarios(), config=config)
        result = session.run()
        outcome = result.outcomes[0]
        assert outcome.frames_processed == 0
        assert outcome.frames_shed > 0
        assert session.server.frames_shed == outcome.frames_shed

    def test_scheduler_reset_called_by_session_setup(self):
        session = SlamShareSession(
            self._scenarios(),
            config=SlamShareConfig(render_video_frames=False),
        )
        # Pollute, then rebuild a session around the same scheduler via
        # reset: stats must be clean before the run starts.
        session.scheduler.submit(0, 1.0)
        session.scheduler.reset()
        assert session.scheduler.mean_latency() == 0.0
        assert session.scheduler.p99_latency() == 0.0
