"""Tests for relocalization, pose-graph optimization and loop closing."""

import numpy as np
import pytest

from repro.datasets import euroc_dataset
from repro.geometry import SE3
from repro.metrics import absolute_trajectory_error
from repro.slam import (
    LoopCloser,
    LoopCloserConfig,
    PoseGraphEdge,
    Relocalizer,
    SlamConfig,
    build_essential_graph,
    optimize_pose_graph,
)
from repro.slam.frame import Frame
from tests.test_slam_system import run_system


@pytest.fixture(scope="module")
def mapped_system():
    ds = euroc_dataset("MH04", duration=10.0, rate=10.0)
    system, lost = run_system(ds)
    assert lost == 0
    return ds, system


class TestRelocalizer:
    def test_relocalizes_revisit_frame(self, mapped_system):
        ds, system = mapped_system
        # A fresh observation of a place already in the map, no prior.
        oracle = ds.make_oracle(stereo=True, seed=77)
        idx = 30
        obs = oracle.observe(ds.world.positions, ds.world.ids, ds.pose_cw(idx))
        frame = Frame.from_observations(9999, 999.0, obs)
        reloc = Relocalizer(system.map, system.database, system.vocabulary,
                            ds.camera)
        result = reloc.relocalize(frame)
        assert result.success
        # Recovered pose close to where the map says that view was.
        expected = ds.pose_cw(idx) * ds.pose_cw(0).inverse()
        rot_err, trans_err = result.pose_cw.distance(expected)
        assert trans_err < 0.15

    def test_fails_on_unseen_place(self, mapped_system):
        ds, system = mapped_system
        other = euroc_dataset("V202", duration=2.0, rate=10.0)
        oracle = other.make_oracle(stereo=True, seed=78)
        obs = oracle.observe(other.world.positions, other.world.ids,
                             other.pose_cw(0))
        frame = Frame.from_observations(9999, 999.0, obs)
        reloc = Relocalizer(system.map, system.database, system.vocabulary,
                            other.camera)
        assert not reloc.relocalize(frame).success

    def test_fails_on_empty_frame(self, mapped_system):
        ds, system = mapped_system
        reloc = Relocalizer(system.map, system.database, system.vocabulary,
                            ds.camera)
        frame = Frame.from_observations(9999, 999.0, [])
        assert not reloc.relocalize(frame).success

    def test_system_recovers_after_blackout(self):
        """End-to-end: feature blackout loses tracking; the system
        relocalizes when features return at a mapped place."""
        ds = euroc_dataset("MH04", duration=10.0, rate=10.0)
        from repro.imu import GRAVITY_W, ImuBuffer, preintegrate, synthesize_imu
        from repro.slam import SlamSystem

        system = SlamSystem(
            ds.camera, SlamConfig(relocalize_on_loss=True),
            gravity=ds.pose_cw(0).rotation @ GRAVITY_W,
        )
        oracle = ds.make_oracle(stereo=True)
        imu = ImuBuffer(synthesize_imu(ds.ground_truth, rate_hz=200.0))
        prev = None
        statuses = []
        for i, (ts, obs) in enumerate(ds.frames(oracle)):
            delta = preintegrate(imu, prev, ts) if prev is not None else None
            if 40 <= i < 55:
                obs = []  # camera covered: total feature blackout
            result = system.process_frame(ts, obs, imu_delta=delta)
            statuses.append(result.tracking.success)
            prev = ts
        # Lost during the blackout, tracking again afterwards.
        assert not all(statuses[40:55])
        assert any(statuses[58:])
        assert system.n_relocalizations >= 1
        ate = absolute_trajectory_error(
            system.estimated_trajectory(), ds.ground_truth
        )
        assert ate.rmse < 0.10


class TestPoseGraph:
    def _chain_map(self, n=12, drift_per_step=0.05, seed=0):
        """A keyframe chain with injected odometry drift and a loop edge
        back to the start carrying the true correction."""
        from tests.test_net_serialization_transport import make_map

        slam_map = make_map(n_keyframes=n, n_points_per_kf=6, seed=seed)
        ordered = sorted(slam_map.keyframes)
        # True poses: identity translations along x; corrupt with drift.
        for k, kf_id in enumerate(ordered):
            true_pose = SE3(np.eye(3), np.array([0.5 * k, 0.0, 0.0]))
            drift = SE3(np.eye(3), np.array([0.0, drift_per_step * k, 0.0]))
            slam_map.keyframes[kf_id].pose_cw = drift * true_pose
        return slam_map, ordered

    def test_build_essential_graph_connected(self, mapped_system):
        _, system = mapped_system
        edges = build_essential_graph(system.map)
        nodes = set()
        for e in edges:
            nodes.add(e.kf_a)
            nodes.add(e.kf_b)
        assert nodes == set(system.map.keyframes)

    def test_optimization_reduces_residual_with_loop_edge(self):
        slam_map, ordered = self._chain_map()
        first, last = ordered[0], ordered[-1]
        true_first = SE3(np.eye(3), np.array([0.0, 0.0, 0.0]))
        true_last = SE3(np.eye(3), np.array([0.5 * (len(ordered) - 1), 0, 0]))
        loop = PoseGraphEdge(
            kf_a=last, kf_b=first,
            relative=true_last * true_first.inverse(),
            weight=200.0, is_loop_edge=True,
        )
        edges = build_essential_graph(slam_map, extra_edges=[loop])
        stats = optimize_pose_graph(slam_map, edges, fixed={first})
        assert stats.final_residual < stats.initial_residual
        # The far end of the chain moved toward its true pose.
        _, err = slam_map.keyframes[last].pose_cw.distance(true_last)
        assert err < 0.05 * len(ordered) * 0.5  # well below raw drift

    def test_fixed_pose_untouched(self):
        slam_map, ordered = self._chain_map(seed=1)
        anchor = ordered[0]
        before = slam_map.keyframes[anchor].pose_cw
        edges = build_essential_graph(slam_map)
        optimize_pose_graph(slam_map, edges, fixed={anchor})
        assert slam_map.keyframes[anchor].pose_cw.almost_equal(before,
                                                               1e-12, 1e-12)

    def test_points_follow_their_anchor(self):
        slam_map, ordered = self._chain_map(seed=2)
        kf_last = slam_map.keyframes[ordered[-1]]
        pid = int(kf_last.point_ids[0])
        point = slam_map.mappoints[pid]
        cam_before = kf_last.pose_cw.apply(point.position)
        loop = PoseGraphEdge(
            kf_a=ordered[-1], kf_b=ordered[0],
            relative=SE3(np.eye(3), np.array([0.5 * (len(ordered) - 1), 0, 0])),
            weight=200.0, is_loop_edge=True,
        )
        edges = build_essential_graph(slam_map, extra_edges=[loop])
        optimize_pose_graph(slam_map, edges, fixed={ordered[0]})
        cam_after = kf_last.pose_cw.apply(point.position)
        # The point stays rigid in its anchor camera's frame.
        assert np.allclose(cam_before, cam_after, atol=1e-9)


class TestLoopCloser:
    def test_loop_detected_on_revisit(self):
        """A drone lapping the hall twice revisits its starting view."""
        ds = euroc_dataset("MH04", duration=45.0, rate=6.0)
        from repro.imu import GRAVITY_W, ImuBuffer, preintegrate, synthesize_imu
        from repro.slam import SlamSystem

        system = SlamSystem(
            ds.camera,
            SlamConfig(loop_closing=True),
            gravity=ds.pose_cw(0).rotation @ GRAVITY_W,
        )
        # Ensure a generous temporal gap requirement is satisfiable: the
        # lap period is 40 s.
        system.loop_closer.config = LoopCloserConfig(min_temporal_gap_s=15.0)
        oracle = ds.make_oracle(stereo=True)
        imu = ImuBuffer(synthesize_imu(ds.ground_truth, rate_hz=200.0))
        prev = None
        for ts, obs in ds.frames(oracle):
            delta = preintegrate(imu, prev, ts) if prev is not None else None
            system.process_frame(ts, obs, imu_delta=delta)
            prev = ts
        assert len(system.loop_closer.closed_loops) >= 1
        loop = system.loop_closer.closed_loops[0]
        assert loop.n_correspondences >= 12
        # Accuracy not harmed by the pose-graph pass.
        ate = absolute_trajectory_error(
            system.estimated_trajectory(), ds.ground_truth
        )
        assert ate.rmse < 0.10

    def test_no_loop_without_revisit(self, mapped_system):
        ds, system = mapped_system
        closer = LoopCloser(system.map, system.database, ds.camera,
                            LoopCloserConfig(min_temporal_gap_s=8.0))
        newest = max(system.map.keyframes.values(), key=lambda k: k.timestamp)
        result = closer.try_close(newest)
        # 10 s of a 40 s lap: nothing older than the gap looks the same.
        assert not result.detected
