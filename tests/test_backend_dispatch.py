"""Array-module dispatch layer + gpu-tier equivalence tests.

Everything here runs without a GPU: the dispatch machinery is exercised
with the fake device module (numpy wearing an ``is_device=True``
costume, see :mod:`repro.backend.fake_xp`), which routes the kernels
through the exact device code paths — staged uploads, counted
transfers, measured kernel timings — while computing on numpy, so
"gpu" results must be *bit-exact* against "vectorized".  Real-device
cases (cupy/torch) are additionally exercised when the host has one
(``skipif`` otherwise).
"""

from __future__ import annotations

import copy

import numpy as np
import pytest

from repro.backend import (
    ArrayModule,
    available_device_modules,
    clear_detection_cache,
    get_array_module,
    host_array_module,
    known_backends,
    probe_array_module,
    register_device_builder,
    resolve_backend,
    use_array_module,
    validate_backend,
)
from repro.backend.fake_xp import FakeDeviceArray, make_fake_array_module
from repro.backend.kernels import (
    hamming_matrix_device,
    stage_descriptors,
)
from repro.geometry import SE3, se3_batch, so3
from repro.slam.bundle_adjustment import local_bundle_adjustment
from repro.slam.pose_graph import optimize_pose_graph
from repro.slam.tracking import Tracker, TrackerConfig
from repro.vision.brief import (
    DESCRIPTOR_BYTES,
    hamming_distance_matrix,
    hamming_distance_pairs,
)
from repro.vision.matching import match_descriptors

HAS_REAL_DEVICE = bool(available_device_modules())


def _rand_descriptors(rng, n):
    return rng.integers(0, 256, size=(n, DESCRIPTOR_BYTES), dtype=np.uint8)


# ---------------------------------------------------------------- registry
class TestRegistry:
    def test_three_tiers_registered(self):
        names = known_backends()
        for tier in ("scalar", "vectorized", "gpu"):
            assert tier in names

    def test_validate_accepts_known(self):
        assert validate_backend("gpu") == "gpu"

    def test_validate_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown backend 'tpu'"):
            validate_backend("tpu")

    def test_validate_rejects_outside_allowed_subset(self):
        # orb.py restricts FAST to the host tiers this way.
        with pytest.raises(ValueError, match="unknown backend 'gpu'"):
            validate_backend("gpu", allowed=("scalar", "vectorized"))

    def test_host_tiers_resolve_to_themselves(self):
        for tier in ("scalar", "vectorized"):
            plan = resolve_backend(tier)
            assert plan.kernel == tier
            assert plan.array_module is None
            assert not plan.on_device

    def test_gpu_resolves_to_injected_device_module(self):
        am = make_fake_array_module()
        plan = resolve_backend("gpu", array_module=am)
        assert plan.kernel == "gpu"
        assert plan.on_device
        assert plan.array_module is am

    def test_gpu_without_device_falls_back_to_vectorized(self):
        plan = resolve_backend("gpu", array_module=host_array_module())
        assert plan.requested == "gpu"
        assert plan.kernel == "vectorized"
        assert not plan.on_device


# ------------------------------------------------------------- ArrayModule
class TestArrayModuleBasics:
    def test_host_module_is_passthrough(self):
        am = host_array_module()
        a = np.arange(6.0).reshape(2, 3)
        assert am.to_device(a) is a          # already contiguous float64
        assert am.to_host(a) is a or np.shares_memory(am.to_host(a), a)
        assert am.transfers.to_device == 0
        assert am.transfers.to_host == 0

    def test_to_device_normalizes_dtype_and_contiguity(self):
        am = make_fake_array_module()
        a = np.asarray(np.arange(12, dtype=np.int32).reshape(4, 3), order="F")
        dev = am.to_device(a[:, :2], dtype=np.float64)
        back = am.to_host(dev)
        assert back.dtype == np.float64
        assert back.flags.c_contiguous
        np.testing.assert_array_equal(back, a[:, :2].astype(np.float64))

    def test_transfers_are_counted_with_bytes(self):
        am = make_fake_array_module()
        a = np.zeros((8, 4))
        dev = am.to_device(a)
        am.to_host(dev)
        assert am.transfers.to_device == 1
        assert am.transfers.to_host == 1
        assert am.transfers.bytes_to_device == a.nbytes
        assert am.transfers.bytes_to_host == a.nbytes

    def test_fake_array_refuses_implicit_host_conversion(self):
        am = make_fake_array_module()
        dev = am.to_device(np.zeros(3))
        with pytest.raises(TypeError, match="to_host"):
            np.asarray(dev)

    def test_kernel_context_records_timing_on_device_only(self):
        fake = make_fake_array_module()
        with fake.kernel("k1"):
            pass
        assert [t.name for t in fake.kernel_timings] == ["k1"]
        assert fake.kernel_timings[0].wall_s >= 0.0
        host = ArrayModule("numpy-2", np, is_device=False)
        with host.kernel("k2"):
            pass
        assert host.kernel_timings == []

    def test_stager_uploads_once_per_key_version(self):
        am = make_fake_array_module()
        stager = am.stager()
        a = np.zeros((4, 2))
        d1 = stager.stage("frame", a, version=1)
        d2 = stager.stage("frame", a, version=1)
        assert d1 is d2
        assert am.transfers.to_device == 1
        assert am.transfers.staging_hits == 1
        stager.stage("frame", a, version=2)   # version bump re-uploads
        assert am.transfers.to_device == 2

    def test_popcount_matches_reference(self):
        am = make_fake_array_module()
        rng = np.random.default_rng(0)
        a = rng.integers(0, 256, size=(5, 8), dtype=np.uint8)
        pc = am.to_host(am.popcount(am.to_device(a)))
        ref = np.unpackbits(a, axis=1).reshape(5, 8, 8).sum(axis=2)
        np.testing.assert_array_equal(pc.astype(np.int64), ref)


# ------------------------------------------------------- probe + detection
class TestProbeAndDetection:
    def test_probe_accepts_fake_module(self):
        assert probe_array_module(make_fake_array_module())

    def test_probe_rejects_broken_module(self):
        broken = make_fake_array_module(fail_ops={"einsum"})
        assert not probe_array_module(broken)

    def test_auto_detection_never_returns_none(self):
        am = get_array_module("auto")
        assert am is not None

    def test_registered_builder_goes_through_probe(self):
        calls = []

        def good_builder():
            calls.append("good")
            return make_fake_array_module("registered-good")

        def bad_builder():
            calls.append("bad")
            return make_fake_array_module("registered-bad",
                                          fail_ops={"bincount"})

        register_device_builder("testgood", good_builder)
        register_device_builder("testbad", bad_builder)
        try:
            clear_detection_cache()
            assert get_array_module("testbad") is None
            am = get_array_module("testgood")
            assert am is not None and am.name == "registered-good"
            # detection result is cached: no rebuild on second lookup
            n_calls = len(calls)
            get_array_module("testgood")
            assert len(calls) == n_calls
        finally:
            from repro.backend.dispatch import _DEVICE_BUILDERS

            _DEVICE_BUILDERS.pop("testgood", None)
            _DEVICE_BUILDERS.pop("testbad", None)
            clear_detection_cache()

    def test_override_short_circuits_detection(self):
        fake = make_fake_array_module("override")
        with use_array_module(fake):
            assert get_array_module("auto") is fake
        assert get_array_module("auto") is not fake


# --------------------------------------------------- Hamming + matching
class TestMatchingEquivalence:
    def test_hamming_matrix_gpu_exact(self):
        rng = np.random.default_rng(1)
        a, b = _rand_descriptors(rng, 40), _rand_descriptors(rng, 55)
        ref = hamming_distance_matrix(a, b)
        am = make_fake_array_module()
        got = hamming_distance_matrix(a, b, am=am)
        np.testing.assert_array_equal(got, ref)
        assert got.dtype == ref.dtype

    def test_hamming_pairs_gpu_exact(self):
        rng = np.random.default_rng(2)
        a, b = _rand_descriptors(rng, 30), _rand_descriptors(rng, 30)
        idx_a = rng.integers(0, 30, size=100)
        idx_b = rng.integers(0, 30, size=100)
        ref = hamming_distance_pairs(a, b, idx_a, idx_b)
        am = make_fake_array_module()
        got = hamming_distance_pairs(a, b, idx_a, idx_b, am=am)
        np.testing.assert_array_equal(got, ref)

    def test_match_descriptors_gpu_exact(self):
        rng = np.random.default_rng(3)
        q, t = _rand_descriptors(rng, 60), _rand_descriptors(rng, 80)
        ref = match_descriptors(q, t)
        am = make_fake_array_module()
        got = match_descriptors(q, t, am=am)
        assert [(m.query_idx, m.train_idx, m.distance) for m in ref] == \
               [(m.query_idx, m.train_idx, m.distance) for m in got]

    def test_hamming_matrix_device_uses_uint64_words_when_supported(self):
        am = make_fake_array_module()
        rng = np.random.default_rng(4)
        a, b = _rand_descriptors(rng, 10), _rand_descriptors(rng, 12)
        a_dev = stage_descriptors(am, a)
        b_dev = stage_descriptors(am, b)
        dist = am.to_host(hamming_matrix_device(am, a_dev, b_dev))
        np.testing.assert_array_equal(dist, hamming_distance_matrix(a, b))
        if am.hamming_dtype == np.uint64:
            assert a_dev.shape == (10, DESCRIPTOR_BYTES // 8)


# ------------------------------------------------------- geometry kernels
class TestGeometryEquivalence:
    def test_se3_exp_log_roundtrip_on_device(self):
        rng = np.random.default_rng(5)
        xi = rng.normal(scale=0.4, size=(64, 6))
        # include near-pi rotations to hit the device fallback branch
        xi[0, :3] = np.array([np.pi - 1e-9, 0.0, 0.0])
        am = make_fake_array_module()
        rot_ref, trans_ref = se3_batch.exp(xi)
        rot_d, trans_d = se3_batch.exp(am.to_device(xi), am=am)
        np.testing.assert_allclose(am.to_host(rot_d), rot_ref, atol=1e-12)
        np.testing.assert_allclose(am.to_host(trans_d), trans_ref, atol=1e-12)
        back_ref = se3_batch.log(rot_ref, trans_ref)
        back_d = se3_batch.log(rot_d, trans_d, am=am)
        np.testing.assert_allclose(am.to_host(back_d), back_ref, atol=1e-9)

    def test_so3_exp_log_batch_on_device(self):
        rng = np.random.default_rng(6)
        omega = rng.normal(scale=0.5, size=(32, 3))
        am = make_fake_array_module()
        rot_ref = so3.exp_batch(omega)
        rot_d = so3.exp_batch(am.to_device(omega), am=am)
        np.testing.assert_allclose(am.to_host(rot_d), rot_ref, atol=1e-12)
        np.testing.assert_allclose(
            am.to_host(so3.log_batch(rot_d, am=am)),
            so3.log_batch(rot_ref), atol=1e-12,
        )


# ----------------------------------------------------- BA and pose graph
def _ba_scene():
    from benchmarks.bench_backend import build_ba_scene

    return build_ba_scene(6, 150, seed=0)


def _pg_scene():
    from benchmarks.bench_backend import build_pose_graph_scene

    return build_pose_graph_scene(24, seed=0)


class TestSolverEquivalence:
    def test_local_ba_gpu_bit_exact_vs_vectorized(self):
        slam_map, cam = _ba_scene()
        window = sorted(slam_map.keyframes)
        fixed = {window[0]}
        map_v = copy.deepcopy(slam_map)
        map_g = copy.deepcopy(slam_map)
        local_bundle_adjustment(
            map_v, cam, window, fixed_keyframe_ids=fixed, backend="vectorized"
        )
        am = make_fake_array_module()
        with use_array_module(am):
            local_bundle_adjustment(
                map_g, cam, window, fixed_keyframe_ids=fixed, backend="gpu"
            )
        for pid in map_v.mappoints:
            np.testing.assert_array_equal(
                map_v.mappoints[pid].position, map_g.mappoints[pid].position
            )
        assert any(t.name == "ba_refine" for t in am.kernel_timings)

    def test_local_ba_stages_once_per_refine_call(self):
        # Each outer BA round re-resections keyframes, so refine must
        # restage; but within one refine call the 3 Gauss-Newton
        # iterations share a single batched staging.  Upload counts are
        # therefore linear in the outer `iterations` knob with a small
        # per-call constant (one batch of input arrays, two downloads).
        slam_map, cam = _ba_scene()
        window = sorted(slam_map.keyframes)
        fixed = {window[0]}
        counts = []
        for outer in (1, 3):
            am = make_fake_array_module()
            with use_array_module(am):
                local_bundle_adjustment(
                    copy.deepcopy(slam_map), cam, window,
                    fixed_keyframe_ids=fixed, backend="gpu",
                    iterations=outer,
                )
            counts.append(am.transfers.snapshot())
        one, three = counts
        assert three.to_device == 3 * one.to_device
        assert three.to_host == 3 * one.to_host
        # per-call constants: one batched staging, a couple of downloads
        assert one.to_device <= 12
        assert one.to_host <= 3

    def test_pose_graph_gpu_bit_exact_vs_vectorized(self):
        slam_map, edges, ordered = _pg_scene()
        fixed = {ordered[0]}
        map_v = copy.deepcopy(slam_map)
        map_g = copy.deepcopy(slam_map)
        res_v = optimize_pose_graph(
            map_v, edges, fixed=fixed, backend="vectorized"
        )
        am = make_fake_array_module()
        with use_array_module(am):
            res_g = optimize_pose_graph(
                map_g, edges, fixed=fixed, backend="gpu"
            )
        for kf_id in map_v.keyframes:
            pa, pb = map_v.keyframes[kf_id].pose_cw, map_g.keyframes[kf_id].pose_cw
            np.testing.assert_array_equal(pa.rotation, pb.rotation)
            np.testing.assert_array_equal(pa.translation, pb.translation)
        assert res_v.final_residual == pytest.approx(
            res_g.final_residual, abs=1e-12
        )
        assert any(t.name == "pg_sweeps" for t in am.kernel_timings)

    def test_gpu_fallback_matches_vectorized_exactly(self):
        # no device module anywhere -> "gpu" runs the literal vectorized
        # path, so results are byte-identical, not merely close.
        slam_map, cam = _ba_scene()
        window = sorted(slam_map.keyframes)
        fixed = {window[0]}
        map_v, map_g = copy.deepcopy(slam_map), copy.deepcopy(slam_map)
        local_bundle_adjustment(
            map_v, cam, window, fixed_keyframe_ids=fixed, backend="vectorized"
        )
        with use_array_module(host_array_module()):
            local_bundle_adjustment(
                map_g, cam, window, fixed_keyframe_ids=fixed, backend="gpu"
            )
        for pid in map_v.mappoints:
            np.testing.assert_array_equal(
                map_v.mappoints[pid].position, map_g.mappoints[pid].position
            )


# ------------------------------------------------------------- tracking
def _tracking_fixture():
    """A tiny map + two frames the tracker can follow."""
    from repro.slam.frame import Frame
    from repro.slam.keyframe import KeyFrame
    from repro.slam.map import SlamMap
    from repro.slam.mappoint import MapPoint
    from repro.vision import PinholeCamera

    rng = np.random.default_rng(7)
    cam = PinholeCamera.ideal(320, 240)
    n = 80
    world = np.column_stack([
        rng.uniform(-2, 2, n), rng.uniform(-1.5, 1.5, n),
        rng.uniform(4, 9, n),
    ])
    descs = _rand_descriptors(rng, n)
    slam_map = SlamMap()
    pose0 = SE3.identity()
    uv, depth, valid = cam.project_world(world, pose0)
    idx = np.nonzero(valid)[0]
    kf = KeyFrame(
        keyframe_id=0, timestamp=0.0, pose_cw=pose0,
        uv=uv[idx], descriptors=descs[idx], depths=depth[idx],
        point_ids=np.arange(len(idx), dtype=np.int64),
    )
    for row, i in enumerate(idx):
        point = MapPoint(point_id=row, position=world[i],
                         descriptor=descs[i])
        point.add_observation(0, row)
        slam_map.add_mappoint(point)
    slam_map.add_keyframe(kf)

    def make_frame(pose):
        uv_f, depth_f, valid_f = cam.project_world(world, pose)
        j = np.nonzero(valid_f)[0]
        return Frame(frame_id=1, timestamp=1.0, uv=uv_f[j],
                     descriptors=descs[j], depths=depth_f[j],
                     right_u=np.full(len(j), -1.0))

    return slam_map, cam, make_frame


class TestTrackerGpuTier:
    def test_tracked_poses_identical_and_timing_measured(self):
        slam_map, cam, make_frame = _tracking_fixture()
        pose = SE3.exp(np.array([0.0, 0.0, 0.0, 0.05, 0.0, 0.01]))

        def run(backend, am=None):
            tracker = Tracker(copy.deepcopy(slam_map), cam,
                              TrackerConfig(min_matches=8),
                              backend=backend, array_module=am)
            tracker.reference_keyframe_id = 0
            tracker.force_pose(SE3.identity())
            return tracker.track(make_frame(pose), pose_prior=pose)

        res_v = run("vectorized")
        am = make_fake_array_module()
        res_g = run("gpu", am=am)
        assert res_v.success and res_g.success
        assert res_v.n_matches == res_g.n_matches
        np.testing.assert_array_equal(
            res_v.frame.pose_cw.rotation, res_g.frame.pose_cw.rotation
        )
        np.testing.assert_array_equal(
            res_v.frame.pose_cw.translation, res_g.frame.pose_cw.translation
        )
        # host path: modeled; device path: measured + drained
        assert res_v.workload.measured_kernel_ms is None
        assert res_g.workload.measured_kernel_ms is not None
        assert res_g.workload.measured_kernel_ms >= 0.0
        assert am.kernel_timings == []   # drained into the workload

    def test_frame_descriptors_uploaded_once_per_track(self):
        slam_map, cam, make_frame = _tracking_fixture()
        am = make_fake_array_module()
        tracker = Tracker(copy.deepcopy(slam_map), cam,
                          TrackerConfig(min_matches=8),
                          backend="gpu", array_module=am)
        tracker.reference_keyframe_id = 0
        tracker.force_pose(SE3.identity())
        pose = SE3.exp(np.array([0.0, 0.0, 0.0, 0.05, 0.0, 0.01]))

        tracker.track(make_frame(pose), pose_prior=pose)
        first = am.transfers.snapshot()
        # local-map pack staged once, frame descriptors staged once;
        # everything else the searches move is small index vectors.
        tracker.track(make_frame(pose), pose_prior=pose)
        second = am.transfers.snapshot()
        # the pack is cached on (ref kf, map version): frame 2 pays only
        # its own frame-descriptor upload (+ per-search small vectors),
        # never a second local-map upload.
        delta = second.to_device - first.to_device
        assert delta < first.to_device
        assert second.bytes_to_device - first.bytes_to_device < \
            first.bytes_to_device

    def test_scalar_tier_unchanged(self):
        slam_map, cam, make_frame = _tracking_fixture()
        pose = SE3.exp(np.array([0.0, 0.0, 0.0, 0.05, 0.0, 0.01]))
        tracker = Tracker(copy.deepcopy(slam_map), cam,
                          TrackerConfig(min_matches=8), backend="scalar")
        tracker.reference_keyframe_id = 0
        tracker.force_pose(SE3.identity())
        res = tracker.track(make_frame(pose), pose_prior=pose)
        assert res.success
        assert res.workload.measured_kernel_ms is None


# ------------------------------------------------- scheduler measured time
class TestMeasuredKernelRecords:
    def test_submit_uses_measured_duration_and_flags_record(self):
        from repro.gpu.scheduler import GpuScheduler
        from repro.net.simclock import SimClock

        clock = SimClock()
        sched = GpuScheduler(clock, mode="temporal")
        modeled = sched.submit(0, 0.010)
        assert not modeled.measured
        assert modeled.latency == pytest.approx(0.010)
        measured = sched.submit(0, 0.010, measured_s=0.004)
        assert measured.measured
        # measured wall time replaces the model as the kernel duration
        assert measured.finished_at - measured.started_at == pytest.approx(
            0.004
        )

    def test_batched_submit_preserves_measured_flag(self):
        from repro.gpu.scheduler import BatchingConfig, GpuScheduler
        from repro.net.simclock import SimClock

        clock = SimClock()
        sched = GpuScheduler(
            clock, mode="temporal",
            batching=BatchingConfig(window_s=0.004, p99_budget_s=None),
        )
        sched.submit(0, 0.010, measured_s=0.002)
        sched.submit(1, 0.010)
        clock.run(until=1.0)
        by_client = {r.client_id: r for r in sched.records}
        assert by_client[0].measured
        assert not by_client[1].measured


# ---------------------------------------------------------- real hardware
@pytest.mark.skipif(not HAS_REAL_DEVICE, reason="no GPU array module")
class TestRealDeviceEquivalence:
    def test_hamming_matrix_real_device(self):
        am = get_array_module("auto")
        assert am.is_device
        rng = np.random.default_rng(8)
        a, b = _rand_descriptors(rng, 64), _rand_descriptors(rng, 64)
        np.testing.assert_array_equal(
            hamming_distance_matrix(a, b, am=am), hamming_distance_matrix(a, b)
        )

    def test_local_ba_real_device(self):
        slam_map, cam = _ba_scene()
        window = sorted(slam_map.keyframes)
        fixed = {window[0]}
        map_v, map_g = copy.deepcopy(slam_map), copy.deepcopy(slam_map)
        local_bundle_adjustment(
            map_v, cam, window, fixed_keyframe_ids=fixed, backend="vectorized"
        )
        local_bundle_adjustment(
            map_g, cam, window, fixed_keyframe_ids=fixed, backend="gpu"
        )
        for pid in map_v.mappoints:
            np.testing.assert_allclose(
                map_v.mappoints[pid].position, map_g.mappoints[pid].position,
                atol=1e-6,
            )


# ----------------------------------------------------------- fake module
class TestFakeModuleSelf:
    """The shim itself has contracts other tests rely on."""

    def test_wrapped_ops_return_fake_arrays(self):
        am = make_fake_array_module()
        xp = am.xp
        out = xp.sqrt(am.to_device(np.array([4.0, 9.0])))
        assert isinstance(out, FakeDeviceArray)
        np.testing.assert_array_equal(am.to_host(out), [2.0, 3.0])

    def test_transfers_copy_not_alias(self):
        am = make_fake_array_module()
        a = np.zeros(3)
        dev = am.to_device(a)
        a[0] = 7.0
        assert am.to_host(dev)[0] == 0.0
