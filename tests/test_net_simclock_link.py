"""Tests for the discrete-event clock and shaped links."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import (
    MBIT,
    PROFILE_BW_9_4,
    PROFILE_BW_18_7,
    PROFILE_DELAY_300MS,
    PROFILE_IDEAL,
    Link,
    SimClock,
)


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_schedule_and_run(self):
        clock = SimClock()
        fired = []
        clock.schedule(1.0, lambda: fired.append(clock.now))
        clock.schedule(0.5, lambda: fired.append(clock.now))
        clock.run()
        assert fired == [0.5, 1.0]

    def test_fifo_among_equal_times(self):
        clock = SimClock()
        order = []
        clock.schedule(1.0, lambda: order.append("a"))
        clock.schedule(1.0, lambda: order.append("b"))
        clock.run()
        assert order == ["a", "b"]

    def test_run_until(self):
        clock = SimClock()
        fired = []
        clock.schedule(1.0, lambda: fired.append(1))
        clock.schedule(5.0, lambda: fired.append(5))
        clock.run(until=2.0)
        assert fired == [1]
        assert clock.now == 2.0
        clock.run()
        assert fired == [1, 5]

    def test_cancel(self):
        clock = SimClock()
        fired = []
        event = clock.schedule(1.0, lambda: fired.append(1))
        clock.cancel(event)
        clock.run()
        assert fired == []

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            SimClock().schedule(-0.1, lambda: None)

    def test_nested_scheduling(self):
        clock = SimClock()
        fired = []

        def outer():
            clock.schedule(1.0, lambda: fired.append(clock.now))

        clock.schedule(1.0, outer)
        clock.run()
        assert fired == [2.0]

    def test_runaway_guard(self):
        clock = SimClock()

        def loop():
            clock.schedule(0.001, loop)

        clock.schedule(0.0, loop)
        with pytest.raises(RuntimeError):
            clock.run(max_events=100)

    def test_pending_count(self):
        clock = SimClock()
        clock.schedule(1.0, lambda: None)
        e = clock.schedule(2.0, lambda: None)
        clock.cancel(e)
        assert clock.pending() == 1

    def test_cancelled_events_lazily_purged(self):
        """Long-running sims that rearm timers must not grow the heap.

        Regression: cancel() used to only flag events, leaving them in
        the heap until their timestamp popped, and pending() walked the
        whole queue.  Cancel far-future timers en masse and check the
        heap shrinks to the live events.
        """
        clock = SimClock()
        fired = []
        # One live event plus a large batch of soon-cancelled timers,
        # as a per-frame timeout that is rearmed every frame produces.
        clock.schedule(1.0, lambda: fired.append(clock.now))
        timers = [clock.schedule(1e6 + i, lambda: None) for i in range(5000)]
        for event in timers:
            clock.cancel(event)
        assert clock.pending() == 1
        # The bulk purge ran: the heap no longer holds the dead timers.
        assert len(clock._queue) < len(timers) // 2
        clock.run(until=2.0)
        assert fired == [1.0]
        assert clock.pending() == 0

    def test_double_cancel_is_idempotent(self):
        clock = SimClock()
        live = clock.schedule(1.0, lambda: None)
        event = clock.schedule(2.0, lambda: None)
        clock.cancel(event)
        clock.cancel(event)
        assert clock.pending() == 1
        clock.run()
        assert clock.pending() == 0
        clock.cancel(live)  # cancelling an already-fired event is harmless
        assert clock.pending() == 0

    def test_interleaved_cancel_preserves_order(self):
        clock = SimClock()
        order = []
        events = [
            clock.schedule(t, lambda t=t: order.append(t))
            for t in (3.0, 1.0, 2.0, 4.0)
        ]
        clock.cancel(events[2])  # drop t=2.0
        clock.run()
        assert order == [1.0, 3.0, 4.0]


class TestLink:
    def test_transmission_delay(self):
        clock = SimClock()
        link = Link(clock, bandwidth_bps=8e6)  # 1 MB/s
        assert link.transmission_delay(1_000_000) == pytest.approx(1.0)

    def test_unconstrained_link_is_instant(self):
        clock = SimClock()
        link = Link(clock, bandwidth_bps=None, delay_s=0.01)
        assert link.transmission_delay(10**9) == 0.0
        assert link.one_way_latency(10**9) == pytest.approx(0.01)

    def test_delivery_time(self):
        clock = SimClock()
        link = Link(clock, bandwidth_bps=8e6, delay_s=0.1)
        arrivals = []
        link.send(1_000_000, lambda: arrivals.append(clock.now))
        clock.run()
        assert arrivals == [pytest.approx(1.1)]

    def test_fifo_queueing(self):
        clock = SimClock()
        link = Link(clock, bandwidth_bps=8e6)
        arrivals = []
        link.send(1_000_000, lambda: arrivals.append(("a", clock.now)))
        link.send(1_000_000, lambda: arrivals.append(("b", clock.now)))
        clock.run()
        assert arrivals[0] == ("a", pytest.approx(1.0))
        assert arrivals[1] == ("b", pytest.approx(2.0))
        assert link.stats.mean_queue_delay > 0

    def test_priority_bypass(self):
        clock = SimClock()
        link = Link(clock, bandwidth_bps=8e6)
        arrivals = []
        link.send(8_000_000, lambda: arrivals.append("big"))
        link.send(1_000, lambda: arrivals.append("tiny"), priority_bypass=True)
        clock.run()
        assert arrivals[0] == "tiny"

    def test_loss(self):
        clock = SimClock()
        link = Link(clock, bandwidth_bps=None, loss_rate=0.5, seed=0)
        delivered = []
        for _ in range(200):
            link.send(100, lambda: delivered.append(1))
        clock.run()
        assert 60 <= len(delivered) <= 140
        assert link.stats.messages_dropped == 200 - len(delivered)

    def test_invalid_params(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            Link(clock, bandwidth_bps=0)
        with pytest.raises(ValueError):
            Link(clock, delay_s=-1)
        with pytest.raises(ValueError):
            Link(clock, loss_rate=1.0)

    @given(st.integers(min_value=1, max_value=10**7))
    @settings(max_examples=20, deadline=None)
    def test_latency_monotone_in_size(self, n_bytes):
        clock = SimClock()
        link = Link(clock, bandwidth_bps=10e6, delay_s=0.05)
        assert link.one_way_latency(n_bytes) >= link.one_way_latency(0)


class TestShapingProfiles:
    def test_paper_profiles_exist(self):
        assert PROFILE_BW_18_7.bandwidth_bps == pytest.approx(18.7 * MBIT)
        assert PROFILE_BW_9_4.bandwidth_bps == pytest.approx(9.4 * MBIT)
        assert PROFILE_DELAY_300MS.delay_s == pytest.approx(0.300)
        assert PROFILE_IDEAL.bandwidth_bps is None

    def test_build_duplex(self):
        clock = SimClock()
        link = PROFILE_DELAY_300MS.build(clock)
        assert link.rtt() == pytest.approx(0.6)

    def test_18_7_mbit_rationale(self):
        # 18.7 Mb/s is the minimum bandwidth for the largest map (Table 1:
        # 38.81 MB... actually sized to send within 5 s; check ~11.7 MB in 5 s)
        clock = SimClock()
        link = PROFILE_BW_18_7.build(clock)
        five_seconds_worth = 18.7 * MBIT * 5 / 8
        assert link.uplink.transmission_delay(int(five_seconds_worth)) == pytest.approx(
            5.0, rel=1e-6
        )
