"""Tests for SE(3)/Sim(3) transforms and quaternions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import SE3, Sim3, quaternion, so3
from repro.geometry.se3 import interpolate, random_se3

small_floats = st.floats(min_value=-2.0, max_value=2.0, allow_nan=False)
twist6 = st.lists(small_floats, min_size=6, max_size=6).map(np.array)


class TestSE3:
    def test_identity_apply(self):
        p = np.array([1.0, 2.0, 3.0])
        assert np.allclose(SE3.identity().apply(p), p)

    def test_compose_inverse_is_identity(self):
        rng = np.random.default_rng(0)
        t = random_se3(rng)
        assert (t * t.inverse()).almost_equal(SE3.identity())
        assert (t.inverse() * t).almost_equal(SE3.identity())

    def test_matrix_roundtrip(self):
        rng = np.random.default_rng(1)
        t = random_se3(rng)
        assert SE3.from_matrix(t.matrix()).almost_equal(t)

    @given(twist6)
    @settings(max_examples=40, deadline=None)
    def test_exp_log_roundtrip(self, xi):
        theta = np.linalg.norm(xi[3:])
        if theta >= np.pi - 1e-2:
            xi = xi.copy()
            xi[3:] = xi[3:] / theta * (np.pi - 0.2)
        t = SE3.exp(xi)
        assert np.allclose(t.log(), xi, atol=1e-6)

    def test_apply_batch_matches_single(self):
        rng = np.random.default_rng(2)
        t = random_se3(rng)
        pts = rng.normal(size=(5, 3))
        batch = t.apply(pts)
        for i in range(5):
            assert np.allclose(batch[i], t.apply(pts[i]))

    def test_camera_center(self):
        rng = np.random.default_rng(3)
        t = random_se3(rng)
        # The camera center maps to the origin of the camera frame.
        assert np.allclose(t.apply(t.camera_center()), np.zeros(3), atol=1e-10)

    def test_compose_matches_matrix_product(self):
        rng = np.random.default_rng(4)
        a, b = random_se3(rng), random_se3(rng)
        assert np.allclose((a * b).matrix(), a.matrix() @ b.matrix())

    def test_interpolate_endpoints(self):
        rng = np.random.default_rng(5)
        a, b = random_se3(rng), random_se3(rng)
        assert interpolate(a, b, 0.0).almost_equal(a, rot_tol=1e-8, trans_tol=1e-8)
        assert interpolate(a, b, 1.0).almost_equal(b, rot_tol=1e-6, trans_tol=1e-6)

    def test_distance_translation_only(self):
        a = SE3.identity()
        b = SE3(np.eye(3), np.array([3.0, 4.0, 0.0]))
        rot_err, trans_err = a.distance(b)
        assert rot_err < 1e-12
        assert trans_err == pytest.approx(5.0)

    def test_perturb_small_twist(self):
        rng = np.random.default_rng(6)
        t = random_se3(rng)
        perturbed = t.perturb(np.full(6, 1e-9))
        assert perturbed.almost_equal(t, rot_tol=1e-7, trans_tol=1e-7)


class TestSim3:
    def test_identity(self):
        p = np.array([1.0, -2.0, 0.5])
        assert np.allclose(Sim3.identity().apply(p), p)

    def test_scale_application(self):
        s = Sim3(np.eye(3), np.zeros(3), 2.0)
        assert np.allclose(s.apply(np.array([1.0, 1.0, 1.0])), [2.0, 2.0, 2.0])

    def test_inverse_roundtrip(self):
        rng = np.random.default_rng(7)
        s = Sim3(so3.random_rotation(rng), rng.normal(size=3), 1.7)
        p = rng.normal(size=3)
        assert np.allclose(s.inverse().apply(s.apply(p)), p, atol=1e-10)

    def test_compose_matches_sequential_apply(self):
        rng = np.random.default_rng(8)
        a = Sim3(so3.random_rotation(rng), rng.normal(size=3), 0.5)
        b = Sim3(so3.random_rotation(rng), rng.normal(size=3), 3.0)
        p = rng.normal(size=3)
        assert np.allclose((a * b).apply(p), a.apply(b.apply(p)), atol=1e-10)

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ValueError):
            Sim3(np.eye(3), np.zeros(3), 0.0)
        with pytest.raises(ValueError):
            Sim3(np.eye(3), np.zeros(3), -1.0)

    def test_transform_pose_moves_camera_center_like_a_point(self):
        rng = np.random.default_rng(9)
        s = Sim3(so3.random_rotation(rng), rng.normal(size=3), 1.8)
        pose = random_se3(rng)
        new_pose = s.transform_pose(pose)
        assert np.allclose(new_pose.camera_center(), s.apply(pose.camera_center()), atol=1e-9)

    def test_transform_pose_preserves_projection_direction(self):
        # A world point and its transform must land on the same camera ray.
        rng = np.random.default_rng(10)
        s = Sim3(so3.random_rotation(rng), rng.normal(size=3), 2.5)
        pose = random_se3(rng)
        point = rng.normal(size=3) + np.array([0.0, 0.0, 5.0])
        before = pose.apply(point)
        after = s.transform_pose(pose).apply(s.apply(point))
        assert np.allclose(after / np.linalg.norm(after), before / np.linalg.norm(before), atol=1e-9)

    def test_matrix_roundtrip_via_apply(self):
        rng = np.random.default_rng(11)
        s = Sim3(so3.random_rotation(rng), rng.normal(size=3), 0.3)
        p = rng.normal(size=3)
        homog = s.matrix() @ np.append(p, 1.0)
        assert np.allclose(homog[:3], s.apply(p))


class TestQuaternion:
    def test_identity_rotation(self):
        assert np.allclose(quaternion.to_matrix(quaternion.identity()), np.eye(3))

    def test_multiply_matches_matrix_product(self):
        rng = np.random.default_rng(12)
        qa = quaternion.from_matrix(so3.random_rotation(rng))
        qb = quaternion.from_matrix(so3.random_rotation(rng))
        lhs = quaternion.to_matrix(quaternion.multiply(qa, qb))
        rhs = quaternion.to_matrix(qa) @ quaternion.to_matrix(qb)
        assert np.allclose(lhs, rhs, atol=1e-10)

    def test_conjugate_is_inverse(self):
        rng = np.random.default_rng(13)
        q = quaternion.from_matrix(so3.random_rotation(rng))
        prod = quaternion.multiply(q, quaternion.conjugate(q))
        assert np.allclose(quaternion.normalize(prod), quaternion.identity(), atol=1e-10)

    def test_matrix_roundtrip(self):
        rng = np.random.default_rng(14)
        for _ in range(20):
            r = so3.random_rotation(rng)
            assert np.allclose(quaternion.to_matrix(quaternion.from_matrix(r)), r, atol=1e-9)

    def test_axis_angle_roundtrip(self):
        w = np.array([0.3, -0.2, 0.9])
        assert np.allclose(quaternion.to_axis_angle(quaternion.from_axis_angle(w)), w, atol=1e-9)

    def test_slerp_endpoints_and_midpoint(self):
        qa = quaternion.identity()
        qb = quaternion.from_axis_angle(np.array([0.0, 0.0, np.pi / 2]))
        assert np.allclose(quaternion.slerp(qa, qb, 0.0), qa)
        assert np.allclose(quaternion.slerp(qa, qb, 1.0), qb, atol=1e-10)
        mid = quaternion.slerp(qa, qb, 0.5)
        assert quaternion.angle(mid) == pytest.approx(np.pi / 4, abs=1e-9)

    def test_integrate_gyro_constant_rate(self):
        q = quaternion.identity()
        omega = np.array([0.0, 0.0, np.pi / 2])  # rad/s
        for _ in range(100):
            q = quaternion.integrate_gyro(q, omega, 0.01)
        assert quaternion.angle(q) == pytest.approx(np.pi / 2, abs=1e-6)

    def test_normalize_zero_raises(self):
        with pytest.raises(ValueError):
            quaternion.normalize(np.zeros(4))

    def test_rotate_matches_matrix(self):
        rng = np.random.default_rng(15)
        q = quaternion.from_matrix(so3.random_rotation(rng))
        v = rng.normal(size=3)
        assert np.allclose(quaternion.rotate(q, v), quaternion.to_matrix(q) @ v)
