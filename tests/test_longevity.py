"""Tests for long-lived maps: eviction, compaction, snapshot/restore."""

import json
import os
import threading

import numpy as np
import pytest

from repro.sharedmem import (
    ShardedMapStore,
    ShmShardedMapStore,
    SnapshotError,
    load_snapshot,
    restore_into_store,
    restore_map,
    save_snapshot,
)
from repro.slam import KeyframeDatabase, SlamMap, default_vocabulary
from repro.slam.mappoint import MapPoint
from repro.slam.pose_graph import PoseGraphEdge, optimize_pose_graph
from repro.vision.brief import DESCRIPTOR_BYTES
from tests.test_net_serialization_transport import make_map


def _share_points(slam_map, a_id, b_id, n):
    """Make keyframe b observe the first n points of keyframe a."""
    kf_a, kf_b = slam_map.keyframes[a_id], slam_map.keyframes[b_id]
    for i in range(n):
        pid = int(kf_a.point_ids[i])
        old = int(kf_b.point_ids[i])
        if old >= 0:
            slam_map.mappoints[old].remove_observation(b_id)
        kf_b.point_ids[i] = pid
        slam_map.mappoints[pid].add_observation(b_id, i)
    slam_map.rebuild_covisibility()


# ----------------------------------------------------- packed swap-remove
class TestPackedSwapRemove:
    def test_remove_keeps_rows_aligned(self):
        slam_map = make_map(n_keyframes=4, n_points_per_kf=8)
        slam_map.packed_positions()  # force a clean packed build
        pids = sorted(slam_map.mappoints)
        doomed = pids[1::3]
        for pid in doomed:
            slam_map.remove_mappoint(pid)
        positions = slam_map.packed_positions()
        assert positions.shape == (slam_map.n_mappoints, 3)
        rows = slam_map.lookup_point_rows(sorted(slam_map.mappoints))
        assert (rows >= 0).all()
        for pid, row in zip(sorted(slam_map.mappoints), rows):
            assert np.array_equal(
                positions[row], slam_map.mappoints[pid].position
            )

    def test_remove_matches_full_rebuild(self):
        a = make_map(n_keyframes=3, n_points_per_kf=10, seed=3)
        b = make_map(n_keyframes=3, n_points_per_kf=10, seed=3)
        a.packed_positions()  # a removes incrementally, b rebuilds
        doomed = sorted(a.mappoints)[::4]
        for pid in doomed:
            a.remove_mappoint(pid)
            b.remove_mappoint(pid)
        b.touch()
        ids = sorted(a.mappoints)
        pos_a, _ = a.gather_point_arrays(ids)
        pos_b, _ = b.gather_point_arrays(ids)
        assert np.array_equal(pos_a, pos_b)


# --------------------------------------------------- replace_mappoint fix
class TestReplaceMappointDedup:
    def test_duplicate_observation_slot_cleared(self):
        slam_map = make_map(n_keyframes=1, n_points_per_kf=6)
        kf = next(iter(slam_map.keyframes.values()))
        old_id, new_id = int(kf.point_ids[0]), int(kf.point_ids[1])
        n_obs_before = slam_map.mappoints[new_id].n_observations
        slam_map.replace_mappoint(old_id, new_id)
        # The keyframe already observed the replacement: the losing slot
        # must clear rather than alias two features to one point.
        assert int(kf.point_ids[0]) == -1
        assert int(kf.point_ids[1]) == new_id
        assert slam_map.mappoints[new_id].n_observations == n_obs_before
        assert old_id not in slam_map.mappoints

    def test_distinct_observers_relabel(self):
        slam_map = make_map(n_keyframes=2, n_points_per_kf=4)
        kfs = sorted(slam_map.keyframes)
        kf_a = slam_map.keyframes[kfs[0]]
        old_id = int(kf_a.point_ids[0])
        # The replacement lives in the other keyframe only.
        new_id = int(slam_map.keyframes[kfs[1]].point_ids[0])
        slam_map.replace_mappoint(old_id, new_id)
        assert int(kf_a.point_ids[0]) == new_id
        assert kfs[0] in slam_map.mappoints[new_id].observations


# --------------------------------------------------- point_positions fix
class TestPointPositions:
    def test_returns_surviving_ids(self):
        slam_map = make_map(n_keyframes=1, n_points_per_kf=5)
        pids = sorted(slam_map.mappoints)
        slam_map.remove_mappoint(pids[2])
        positions, surviving = slam_map.point_positions(pids)
        assert surviving == [p for p in pids if p != pids[2]]
        assert positions.shape == (len(surviving), 3)
        for row, pid in enumerate(surviving):
            assert np.array_equal(
                positions[row], slam_map.mappoints[pid].position
            )

    def test_strict_raises_on_missing(self):
        slam_map = make_map(n_keyframes=1, n_points_per_kf=3)
        pids = sorted(slam_map.mappoints)
        slam_map.remove_mappoint(pids[0])
        with pytest.raises(KeyError):
            slam_map.point_positions(pids, strict=True)

    def test_empty_request(self):
        slam_map = make_map(n_keyframes=1, n_points_per_kf=2)
        positions, surviving = slam_map.point_positions([])
        assert positions.shape == (0, 3)
        assert surviving == []


# ------------------------------------------------------------- eviction
class TestEviction:
    def test_budget_enforced_and_protected_survive(self):
        slam_map = make_map(n_keyframes=6, n_points_per_kf=5)
        kfs = sorted(slam_map.keyframes)
        slam_map.touch_keyframe(kfs[0])
        evicted = slam_map.evict_keyframes(3, protect=[kfs[2]])
        assert slam_map.n_keyframes == 3
        assert kfs[2] in slam_map.keyframes
        # The newest keyframe per client (here: the touched one last?)
        # -- the most recently *used* keyframe is the tracking reference.
        assert kfs[0] in slam_map.keyframes
        assert set(evicted).isdisjoint(slam_map.keyframes)

    def test_least_covisible_goes_first(self):
        slam_map = make_map(n_keyframes=4, n_points_per_kf=6)
        kfs = sorted(slam_map.keyframes)
        # kfs[0] <-> kfs[1] strongly covisible; kfs[2] isolated.
        _share_points(slam_map, kfs[0], kfs[1], 4)
        for k in kfs:
            slam_map.touch_keyframe(k)
        slam_map.touch_keyframe(kfs[2])  # recently used but isolated
        evicted = slam_map.evict_keyframes(3)
        assert evicted and evicted[0] not in (kfs[0], kfs[1])

    def test_orphan_points_leave_with_keyframe(self):
        slam_map = make_map(n_keyframes=3, n_points_per_kf=5)
        kfs = sorted(slam_map.keyframes)
        victim = kfs[0]
        orphan_pids = [int(p) for p in
                       slam_map.keyframes[victim].observed_point_ids()]
        slam_map.touch_keyframe(kfs[1])
        slam_map.touch_keyframe(kfs[2])
        slam_map.evict_keyframes(2)
        assert victim not in slam_map.keyframes
        for pid in orphan_pids:
            assert pid not in slam_map.mappoints
        # Pose-graph invariant: every surviving point has an observer.
        for point in slam_map.mappoints.values():
            assert point.n_observations > 0
            assert all(k in slam_map.keyframes for k in point.observations)

    def test_drain_evictions_hands_off_and_clears(self):
        slam_map = make_map(n_keyframes=4, n_points_per_kf=4)
        slam_map.enforce_budgets(max_keyframes=2, max_mappoints=6)
        kfs, pts = slam_map.drain_evictions()
        assert kfs and pts
        assert slam_map.drain_evictions() == ([], [])

    def test_pose_graph_runs_after_eviction(self):
        slam_map = make_map(n_keyframes=5, n_points_per_kf=5)
        kfs = sorted(slam_map.keyframes)
        slam_map.evict_keyframes(3)
        survivors = sorted(slam_map.keyframes)
        edges = [
            PoseGraphEdge(
                a, b,
                slam_map.keyframes[a].pose_cw
                * slam_map.keyframes[b].pose_cw.inverse(),
                weight=10.0,
            )
            for a, b in zip(survivors, survivors[1:])
        ]
        # Evicted keyframes must be filtered from the edge set by the
        # caller; the optimizer then runs cleanly on the survivors.
        assert all(
            a in slam_map.keyframes and b in slam_map.keyframes
            for a, b in ((e.kf_a, e.kf_b) for e in edges)
        )
        optimize_pose_graph(slam_map, edges, fixed={survivors[0]})
        assert sorted(slam_map.keyframes) == survivors
        assert kfs[0] not in slam_map.keyframes or len(kfs) == len(survivors)

    def test_covisibility_holds_no_evicted_nodes(self):
        slam_map = make_map(n_keyframes=5, n_points_per_kf=6)
        kfs = sorted(slam_map.keyframes)
        _share_points(slam_map, kfs[0], kfs[1], 3)
        _share_points(slam_map, kfs[2], kfs[3], 3)
        evicted = slam_map.evict_keyframes(2)
        for kf_id in evicted:
            assert not slam_map.covisibility.has_node(kf_id)


# ----------------------------------------------- store compaction (local)
class TestLocalStoreCompaction:
    def _populated(self):
        slam_map = make_map(n_keyframes=4, n_points_per_kf=8)
        store = ShardedMapStore(n_shards=2, capacity=4 * 1024 * 1024)
        store.publish_map(
            list(slam_map.keyframes.values()),
            list(slam_map.mappoints.values()),
        )
        return slam_map, store

    def test_compact_preserves_live_records(self):
        slam_map, store = self._populated()
        doomed = sorted(slam_map.mappoints)[::2]
        for pid in doomed:
            store.remove_mappoint(pid)
        before = {pid: store.get_mappoint(pid).position.copy()
                  for pid in store.mappoint_ids()}
        store.compact()
        assert sorted(store.mappoint_ids()) == sorted(before)
        for pid, position in before.items():
            assert np.array_equal(store.get_mappoint(pid).position, position)

    def test_maybe_compact_respects_threshold(self):
        _, store = self._populated()
        # Utilization is far below 1.0: nothing should compact.
        assert store.maybe_compact(utilization=1.0) == 0


# ------------------------------------------- shm compaction + torn reads
class TestShmCompaction:
    def _probe_point(self, pid):
        return MapPoint(
            point_id=pid,
            position=np.array([pid, 2.0 * pid, 3.0 * pid]),
            descriptor=np.full(DESCRIPTOR_BYTES, pid % 251, dtype=np.uint8),
        )

    def _valid(self, point):
        pid = point.point_id
        return (
            np.array_equal(point.position, [pid, 2.0 * pid, 3.0 * pid])
            and bool(np.all(point.descriptor == pid % 251))
        )

    def test_compaction_reclaims_with_concurrent_readers(self):
        store = ShmShardedMapStore.create(
            n_shards=2, pack_capacity=512,
            shard_slab_bytes=512 * 1024, lock_timeout_s=30.0,
        )
        torn, reads = [0], [0]
        stop = threading.Event()
        live = [self._probe_point(i) for i in range(64)]
        try:
            store.publish_map([], live)
            live_ids = [p.point_id for p in live]

            def reader():
                rng = np.random.default_rng(1)
                while not stop.is_set():
                    pid = int(rng.choice(live_ids))
                    point = store.get_mappoint(pid)
                    if point is None:
                        continue
                    reads[0] += 1
                    if not self._valid(point):
                        torn[0] += 1

            threads = [threading.Thread(target=reader, daemon=True)
                       for _ in range(2)]
            for t in threads:
                t.start()
            reclaimed = 0
            next_pid = len(live)
            for _ in range(4):
                fresh = [self._probe_point(next_pid + i) for i in range(64)]
                next_pid += 64
                store.publish_map([], fresh)
                for pid in live_ids[: len(live_ids) // 2]:
                    store.remove_mappoint(pid)
                live_ids = (live_ids[len(live_ids) // 2:]
                            + [p.point_id for p in fresh])
                reclaimed += store.compact()
            stop.set()
            for t in threads:
                t.join(timeout=10.0)
            assert reclaimed > 0
            assert torn[0] == 0
            assert sorted(store.mappoint_ids()) == sorted(live_ids)
            for pid in live_ids:
                assert self._valid(store.get_mappoint(pid))
        finally:
            stop.set()
            store.close()
            store.unlink()

    def test_second_attachment_rescans_after_compaction(self):
        store = ShmShardedMapStore.create(
            n_shards=1, pack_capacity=256,
            shard_slab_bytes=256 * 1024, lock_timeout_s=30.0,
        )
        try:
            other = ShmShardedMapStore.attach(store.handle())
            points = [self._probe_point(i) for i in range(10)]
            store.publish_map([], points)
            assert len(other.mappoint_ids()) == 10  # warm other's index
            for pid in range(5):
                store.remove_mappoint(pid)
            assert store.compact() > 0
            # The epoch bump forces the second attachment to rescan the
            # rewritten log rather than trust stale offsets.
            survivors = sorted(other.mappoint_ids())
            assert survivors == list(range(5, 10))
            for pid in survivors:
                assert self._valid(other.get_mappoint(pid))
            other.close()
        finally:
            store.close()
            store.unlink()


# ------------------------------------------------------ snapshot/restore
class TestSnapshotRoundTrip:
    def _store_with_map(self):
        slam_map = make_map(n_keyframes=4, n_points_per_kf=6)
        store = ShardedMapStore(n_shards=3, capacity=4 * 1024 * 1024)
        store.publish_map(
            list(slam_map.keyframes.values()),
            list(slam_map.mappoints.values()),
        )
        return slam_map, store

    def test_roundtrip_restores_entities(self, tmp_path):
        slam_map, store = self._store_with_map()
        path = str(tmp_path / "map.snap")
        info = save_snapshot(store, path)
        assert info.n_keyframes == slam_map.n_keyframes
        assert info.n_mappoints == slam_map.n_mappoints
        snap = load_snapshot(path)
        fresh_store = ShardedMapStore(n_shards=3, capacity=4 * 1024 * 1024)
        restore_into_store(snap, fresh_store)
        assert sorted(fresh_store.keyframe_ids()) == sorted(slam_map.keyframes)
        fresh_map = SlamMap()
        database = KeyframeDatabase(default_vocabulary())
        restore_map(snap, fresh_map, database)
        assert sorted(fresh_map.keyframes) == sorted(slam_map.keyframes)
        assert sorted(fresh_map.mappoints) == sorted(slam_map.mappoints)
        for kf_id, kf in slam_map.keyframes.items():
            restored = fresh_map.keyframes[kf_id]
            assert np.allclose(restored.pose_cw.matrix(), kf.pose_cw.matrix())
            assert restored.bow_vector == pytest.approx(kf.bow_vector)
        for point in slam_map.mappoints.values():
            observed = fresh_map.mappoints[point.point_id]
            assert np.array_equal(observed.position, point.position)
            assert observed.observations == point.observations

    def test_filter_keeps_private_entities_out(self, tmp_path):
        slam_map, store = self._store_with_map()
        keep_kfs = sorted(slam_map.keyframes)[:2]
        keep_pts = sorted(slam_map.mappoints)[:5]
        path = str(tmp_path / "filtered.snap")
        save_snapshot(store, path, keyframe_ids=keep_kfs,
                      mappoint_ids=keep_pts)
        snap = load_snapshot(path)
        assert sorted(kf.keyframe_id for kf in snap.keyframes) == keep_kfs
        assert sorted(p.point_id for p in snap.mappoints) == keep_pts

    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(SnapshotError):
            load_snapshot(str(tmp_path / "nope"))

    def test_corrupt_shard_rejected(self, tmp_path):
        _, store = self._store_with_map()
        path = str(tmp_path / "corrupt.snap")
        save_snapshot(store, path)
        shard_file = next(
            f for f in sorted(os.listdir(path))
            if f.startswith("shard-") and os.path.getsize(
                os.path.join(path, f))
        )
        with open(os.path.join(path, shard_file), "r+b") as fh:
            fh.seek(20)
            fh.write(b"\xff\xff")
        with pytest.raises(SnapshotError):
            load_snapshot(path)

    def test_wrong_version_rejected(self, tmp_path):
        _, store = self._store_with_map()
        path = str(tmp_path / "versioned.snap")
        save_snapshot(store, path)
        manifest_path = os.path.join(path, "MANIFEST.json")
        with open(manifest_path, "r", encoding="utf-8") as fh:
            manifest = json.load(fh)
        manifest["version"] = 99
        with open(manifest_path, "w", encoding="utf-8") as fh:
            json.dump(manifest, fh)
        with pytest.raises(SnapshotError):
            load_snapshot(path)

    def test_save_is_atomic_replace(self, tmp_path):
        slam_map, store = self._store_with_map()
        path = str(tmp_path / "atomic.snap")
        save_snapshot(store, path)
        first = load_snapshot(path).info
        # Second save lands over the first without leaving tmp debris.
        save_snapshot(store, path)
        assert not os.path.exists(path + ".tmp")
        assert load_snapshot(path).info.n_keyframes == first.n_keyframes


class TestMultiSessionRelocalization:
    def test_restored_client_relocalizes(self, tmp_path):
        from repro.core import (
            ClientScenario,
            SlamShareConfig,
            SlamShareSession,
        )
        from repro.datasets import make_dataset

        snap_path = str(tmp_path / "session.snap")
        config = SlamShareConfig(camera_fps=10.0, render_video_frames=False)
        config.serving.snapshot_path = snap_path
        scenario = ClientScenario(
            client_id=0,
            dataset=make_dataset("MH04", duration=8.0, rate=10.0),
            start_time=0.0, oracle_seed=7, imu_seed=8,
        )
        SlamShareSession([scenario], config, ate_sample_interval=1.0).run()
        info = load_snapshot(snap_path).info
        assert info.n_keyframes > 0

        config2 = SlamShareConfig(camera_fps=10.0, render_video_frames=False)
        config2.serving.restore_path = snap_path
        fresh = ClientScenario(
            client_id=4,
            dataset=make_dataset("MH04", duration=6.0, rate=10.0),
            start_time=0.0, oracle_seed=21, imu_seed=22,
        )
        session = SlamShareSession([fresh], config2, ate_sample_interval=1.0)
        # The restored map preloads before the client joins...
        assert session.server.global_map.n_keyframes == info.n_keyframes
        result = session.run()
        # ...so the fresh client goes through place recognition and
        # merges instead of starting the map.
        merges = [m for m in result.merges if m.client_id == 4]
        assert merges, "fresh client did not relocalize into restored map"
        assert result.client_ate(4).rmse < 0.15
