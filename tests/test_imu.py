"""Tests for IMU synthesis, preintegration and the Alg. 1 motion model."""

import numpy as np
import pytest

from repro.geometry import SE3, Trajectory, quaternion
from repro.imu import (
    ClientMotionModel,
    FusionConfig,
    ImuBuffer,
    ImuNoiseModel,
    ImuState,
    preintegrate,
    propagate,
    slice_samples,
    synthesize_imu,
)


def _line_trajectory(duration=4.0, rate=20.0, speed=1.0):
    times = np.arange(0, duration, 1.0 / rate)
    pos = np.column_stack([speed * times, np.zeros_like(times), np.zeros_like(times)])
    return Trajectory.from_arrays(times, pos)


def _circle_trajectory(duration=5.0, knot_rate=100.0, radius=3.0, period=10.0):
    times = np.arange(0, duration, 1.0 / knot_rate)
    theta = 2 * np.pi * times / period
    pos = np.column_stack(
        [radius * np.cos(theta), radius * np.sin(theta), np.zeros_like(times)]
    )
    return Trajectory.from_arrays(times, pos)


class TestSynthesis:
    def test_static_reads_gravity(self):
        times = np.arange(0, 2, 0.05)
        pos = np.zeros((len(times), 3))
        # Strictly increasing positions required? No — static is fine.
        traj = Trajectory.from_arrays(times, pos)
        samples = synthesize_imu(traj, rate_hz=100.0, with_noise=False)
        accel = np.array([s.accel for s in samples])
        assert np.allclose(accel.mean(axis=0), [0, 0, 9.81], atol=1e-6)
        gyro = np.array([s.gyro for s in samples])
        assert np.allclose(gyro, 0, atol=1e-9)

    def test_constant_velocity_zero_world_accel(self):
        samples = synthesize_imu(_line_trajectory(), rate_hz=100.0, with_noise=False)
        accel = np.array([s.accel for s in samples])
        # Specific force is just -gravity in the (identity-oriented) body.
        assert np.allclose(accel, [0, 0, 9.81], atol=1e-6)

    def test_sample_rate(self):
        traj = _line_trajectory(duration=2.0)
        samples = synthesize_imu(traj, rate_hz=200.0)
        dt = np.diff([s.timestamp for s in samples])
        assert np.allclose(dt, 0.005, atol=1e-9)

    def test_noise_changes_measurements(self):
        traj = _line_trajectory()
        clean = synthesize_imu(traj, rate_hz=100.0, with_noise=False)
        noisy = synthesize_imu(traj, rate_hz=100.0, with_noise=True, seed=1)
        a_clean = np.array([s.accel for s in clean])
        a_noisy = np.array([s.accel for s in noisy])
        assert not np.allclose(a_clean, a_noisy)
        assert np.abs(a_noisy - a_clean).mean() < 0.1  # still MEMS-small

    def test_too_short_trajectory_rejected(self):
        times = [0.0, 0.1]
        traj = Trajectory.from_arrays(times, np.zeros((2, 3)))
        with pytest.raises(ValueError):
            synthesize_imu(traj)

    def test_noise_model_scaling(self):
        noise = ImuNoiseModel()
        assert noise.gyro_sigma(400.0) == pytest.approx(
            noise.gyro_sigma(100.0) * 2.0
        )

    def test_slice_samples(self):
        samples = synthesize_imu(_line_trajectory(), rate_hz=100.0)
        part = slice_samples(samples, 1.0, 2.0)
        assert all(1.0 <= s.timestamp < 2.0 for s in part)


class TestPreintegration:
    def test_dead_reckon_circle(self):
        traj = _circle_trajectory()
        samples = synthesize_imu(traj, rate_hz=200.0, with_noise=False)
        v0 = np.array([0.0, 3.0 * 2 * np.pi / 10.0, 0.0])
        state = ImuState(np.eye(3), traj[0].position, v0, 0.0)
        for i in range(1, len(traj)):
            delta = preintegrate(samples, traj[i - 1].timestamp, traj[i].timestamp)
            state = propagate(state, delta)
        assert np.linalg.norm(state.position - traj[-1].position) < 0.05

    def test_empty_interval_is_identity(self):
        delta = preintegrate([], 0.0, 0.1)
        assert np.allclose(delta.delta_r, np.eye(3))
        assert np.allclose(delta.delta_p, 0)
        assert delta.dt == pytest.approx(0.1)

    def test_buffer_matches_list(self):
        traj = _circle_trajectory(duration=2.0)
        samples = synthesize_imu(traj, rate_hz=200.0, with_noise=False)
        buffer = ImuBuffer(samples)
        d1 = preintegrate(samples, 0.5, 1.0)
        d2 = preintegrate(buffer, 0.5, 1.0)
        assert np.allclose(d1.delta_r, d2.delta_r)
        assert np.allclose(d1.delta_p, d2.delta_p)
        assert np.allclose(d1.delta_v, d2.delta_v)

    def test_propagation_includes_gravity(self):
        # Free fall: no IMU specific force, position drops by g/2 t^2.
        state = ImuState(np.eye(3), np.zeros(3), np.zeros(3), 0.0)
        from repro.imu.preintegration import ImuDelta

        delta = ImuDelta(0.0, 1.0)
        final = propagate(state, delta)
        assert np.allclose(final.position, [0, 0, -9.81 / 2], atol=1e-9)
        assert np.allclose(final.velocity, [0, 0, -9.81], atol=1e-9)

    def test_pose_conventions(self):
        state = ImuState(np.eye(3), np.array([1.0, 2.0, 3.0]), np.zeros(3), 0.0)
        assert np.allclose(state.pose_wb().apply(np.zeros(3)), [1, 2, 3])
        assert np.allclose(state.pose_bw().apply(np.array([1.0, 2.0, 3.0])), 0)


class TestClientMotionModel:
    def _model(self, traj, noise=False, fusion=None):
        samples = ImuBuffer(synthesize_imu(traj, rate_hz=200.0, with_noise=noise))
        v0 = traj.velocities()[1]
        state = ImuState(
            quaternion.to_matrix(traj[0].orientation), traj[0].position, v0, 0.0
        )
        return ClientMotionModel(state, fusion=fusion), samples

    def test_pure_imu_advance_follows_truth(self):
        traj = _circle_trajectory(duration=2.0)
        model, samples = self._model(traj)
        for i in range(1, 40):
            delta = preintegrate(samples, traj[i - 1].timestamp, traj[i].timestamp)
            model.advance(delta)
        err = np.linalg.norm(model.states[-1].position - traj[39].position)
        assert err < 0.02

    def test_server_pose_correction_repropagates(self):
        traj = _circle_trajectory(duration=3.0)
        model, samples = self._model(traj, noise=True)
        for i in range(1, 100):
            delta = preintegrate(samples, traj[i - 1].timestamp, traj[i].timestamp)
            model.advance(delta)
        drift_before = np.linalg.norm(model.states[-1].position - traj[99].position)
        # A perfect server pose for frame 95 arrives late.
        model.receive_slam_pose(95, traj[95].pose_bw())
        drift_after = np.linalg.norm(model.states[-1].position - traj[99].position)
        assert drift_after < drift_before
        assert drift_after < 0.05

    def test_fusion_weight_zero_keeps_imu(self):
        traj = _circle_trajectory(duration=1.0)
        model, samples = self._model(
            traj, fusion=FusionConfig(server_weight=0.0)
        )
        delta = preintegrate(samples, traj[0].timestamp, traj[10].timestamp)
        model.advance(delta)
        before = model.states[-1].position.copy()
        model.receive_slam_pose(1, SE3.identity())
        assert np.allclose(model.states[1].position, before, atol=1e-9)

    def test_fusion_weight_one_snaps_to_server(self):
        traj = _circle_trajectory(duration=1.0)
        model, samples = self._model(traj, fusion=FusionConfig(server_weight=1.0))
        delta = preintegrate(samples, traj[0].timestamp, traj[5].timestamp)
        model.advance(delta)
        target = traj[5].pose_bw()
        model.receive_slam_pose(1, target)
        assert np.allclose(
            model.states[1].position, target.inverse().translation, atol=1e-9
        )

    def test_invalid_frame_index(self):
        traj = _circle_trajectory(duration=1.0)
        model, _ = self._model(traj)
        with pytest.raises(IndexError):
            model.receive_slam_pose(5, SE3.identity())

    def test_invalid_fusion_weight(self):
        with pytest.raises(ValueError):
            FusionConfig(server_weight=1.5)

    def test_drift_since_correction(self):
        traj = _circle_trajectory(duration=2.0)
        model, samples = self._model(traj)
        for i in range(1, 30):
            delta = preintegrate(samples, traj[i - 1].timestamp, traj[i].timestamp)
            model.advance(delta)
        model.receive_slam_pose(10, traj[10].pose_bw())
        expected = traj[29].timestamp - traj[10].timestamp
        assert model.drift_since_correction() == pytest.approx(expected)

    def test_rtt_tolerance_table2_shape(self):
        """Increasing correction delay degrades accuracy only mildly
        (the Table 2 effect)."""
        traj = _circle_trajectory(duration=6.0, knot_rate=30.0)
        errors = {}
        for lag_frames in (1, 10, 30):
            model, samples = self._model(traj, noise=True)
            for i in range(1, len(traj)):
                delta = preintegrate(
                    samples, traj[i - 1].timestamp, traj[i].timestamp
                )
                model.advance(delta)
                ready = i - lag_frames
                if ready >= 1:
                    model.receive_slam_pose(ready, traj[ready].pose_bw())
            err = [
                np.linalg.norm(model.states[k].position - traj[k].position)
                for k in range(1, len(traj))
            ]
            errors[lag_frames] = float(np.mean(err))
        assert errors[1] <= errors[10] <= errors[30]
        # Even 1 s of lag stays centimeter-scale, not meters.
        assert errors[30] < 0.10
