"""Integration tests: tracking, local mapping and the full SlamSystem."""

import numpy as np
import pytest

from repro.datasets import euroc_dataset, kitti_dataset
from repro.imu import GRAVITY_W, ImuBuffer, preintegrate, synthesize_imu
from repro.metrics import absolute_trajectory_error
from repro.slam import SlamConfig, SlamSystem


def run_system(dataset, duration=None, stereo=True, mono_scale=1.0,
               oracle_seed=7, imu_seed=11, config=None, client_id=0):
    """Drive a SlamSystem through a dataset with IMU priors."""
    t0_pose = dataset.pose_cw(0)
    config = config or SlamConfig(
        mono=(mono_scale != 1.0), mono_scale=mono_scale
    )
    system = SlamSystem(
        dataset.camera, config, client_id=client_id,
        gravity=t0_pose.rotation @ GRAVITY_W,
    )
    oracle = dataset.make_oracle(stereo=stereo, seed=oracle_seed)
    imu = ImuBuffer(
        synthesize_imu(dataset.ground_truth, rate_hz=200.0, seed=imu_seed)
    )
    prev = None
    lost = 0
    for ts, obs in dataset.frames(oracle):
        delta = preintegrate(imu, prev, ts) if prev is not None else None
        result = system.process_frame(ts, obs, imu_delta=delta)
        if not result.tracking.success:
            lost += 1
        prev = ts
    return system, lost


class TestSingleUserSlam:
    def test_euroc_tracking_accuracy(self):
        ds = euroc_dataset("MH04", duration=12.0, rate=10.0)
        system, lost = run_system(ds)
        assert lost == 0
        ate = absolute_trajectory_error(system.estimated_trajectory(),
                                        ds.ground_truth)
        # Paper target: single-user accuracy well under 10 cm.
        assert ate.rmse < 0.10

    def test_kitti_tracking_accuracy(self):
        ds = kitti_dataset("KITTI-05", duration=12.0, rate=10.0)
        system, lost = run_system(ds)
        assert lost <= 1
        ate = absolute_trajectory_error(system.estimated_trajectory(),
                                        ds.ground_truth)
        assert ate.rmse < 0.30  # vehicular scale (paper: ~1.7 m over 92 s)

    def test_map_grows_with_exploration(self):
        ds = euroc_dataset("MH04", duration=10.0, rate=10.0)
        system, _ = run_system(ds)
        assert system.map.n_keyframes >= 5
        assert system.map.n_mappoints > 200

    def test_mono_scale_ambiguity_applied(self):
        ds = euroc_dataset("MH04", duration=8.0, rate=10.0)
        scaled, _ = run_system(ds, mono_scale=0.7)
        unscaled, _ = run_system(ds, mono_scale=1.0)
        # The scaled map's trajectory is ~0.7x the metric one.
        len_scaled = scaled.estimated_trajectory().path_length()
        len_unscaled = unscaled.estimated_trajectory().path_length()
        assert len_scaled == pytest.approx(0.7 * len_unscaled, rel=0.05)

    def test_scale_aligned_ate_recovers_mono(self):
        ds = euroc_dataset("MH04", duration=8.0, rate=10.0)
        system, _ = run_system(ds, mono_scale=0.7)
        ate = absolute_trajectory_error(
            system.estimated_trajectory(), ds.ground_truth, with_scale=True
        )
        assert ate.rmse < 0.10
        assert ate.transform.scale == pytest.approx(1.0 / 0.7, rel=0.05)

    def test_tracking_without_prior_fails_gracefully(self):
        ds = euroc_dataset("MH04", duration=2.0, rate=10.0)
        system = SlamSystem(ds.camera, SlamConfig())
        oracle = ds.make_oracle(stereo=True)
        frames = list(ds.frames(oracle))
        system.process_frame(*frames[0])  # bootstrap
        # No IMU, no gravity: constant-velocity still tracks short term.
        result = system.process_frame(*frames[1])
        assert result.tracking.success

    def test_lost_frames_counted(self):
        ds = euroc_dataset("MH04", duration=2.0, rate=10.0)
        system = SlamSystem(ds.camera, SlamConfig())
        oracle = ds.make_oracle(stereo=True)
        frames = list(ds.frames(oracle))
        system.process_frame(*frames[0])
        system.process_frame(frames[1][0], [])  # empty observation set
        assert system.n_lost_frames() == 1

    def test_workload_accounting(self):
        ds = euroc_dataset("MH04", duration=3.0, rate=10.0)
        system, _ = run_system(ds, duration=3.0)
        # Exercise one more frame to check the workload fields.
        oracle = ds.make_oracle(stereo=True, seed=99)
        ts, obs = next(iter(ds.frames(oracle)))
        result = system.process_frame(ts + 100.0, obs)
        w = result.tracking.workload
        assert w.image_pixels > 0
        assert w.n_features == len(obs)

    def test_keyframe_interval_respected(self):
        ds = euroc_dataset("MH04", duration=8.0, rate=10.0)
        cfg = SlamConfig(keyframe_interval=4, keyframe_min_matches=1)
        system, _ = run_system(ds, config=cfg)
        n_frames = ds.n_frames
        assert system.map.n_keyframes >= n_frames // 5

    def test_retarget_to_transforms_state(self):
        from repro.geometry import Sim3
        from repro.slam import KeyframeDatabase, SlamMap

        ds = euroc_dataset("MH04", duration=4.0, rate=10.0)
        system, _ = run_system(ds)
        transform = Sim3(np.eye(3), np.array([5.0, 0.0, 0.0]), 1.0)
        old_traj = system.estimated_trajectory()
        new_map = SlamMap(map_id=42)
        new_db = KeyframeDatabase(system.vocabulary)
        system.retarget_to(new_map, new_db, transform)
        assert system.map is new_map
        new_traj = system.estimated_trajectory()
        assert np.allclose(
            new_traj.positions, old_traj.positions + [5.0, 0.0, 0.0]
        )


class TestLocalMapping:
    def test_cull_removes_unreliable_points(self):
        ds = euroc_dataset("MH04", duration=6.0, rate=10.0)
        system, _ = run_system(ds)
        # Force some points to look unreliable.
        for point in list(system.map.mappoints.values())[:20]:
            point.times_visible = 50
            point.times_found = 2
        removed = system.mapper.cull_mappoints()
        assert removed >= 20

    def test_fuse_prevents_duplicates(self):
        ds = euroc_dataset("MH04", duration=8.0, rate=10.0)
        system, _ = run_system(ds)
        # Count near-duplicate points (same landmark mapped twice).
        positions = np.array([p.position for p in system.map.mappoints.values()])
        from scipy.spatial import cKDTree

        tree = cKDTree(positions)
        pairs = tree.query_pairs(r=0.03)
        assert len(pairs) < len(positions) * 0.05
