"""End-to-end tests for the SLAM-Share session, server, client, holograms.

These are the system-level tests of the paper's architecture: multi-user
sessions over the simulated network, merging, pose fusion, hologram
consistency.  Durations are kept short (pure-Python SLAM); module-level
session results are shared across read-only tests.
"""

import numpy as np
import pytest

from repro.core import (
    BaselineConfig,
    BaselineSession,
    ClientScenario,
    SlamShareConfig,
    SlamShareSession,
    perceived_position,
    placement_error,
)
from repro.datasets import euroc_dataset
from repro.geometry import Sim3
from repro.net import PROFILE_DELAY_300MS


def _scenarios(duration_a=14.0, duration_b=11.0, rate=10.0):
    mh04 = euroc_dataset("MH04", duration=duration_a, rate=rate)
    mh05 = euroc_dataset("MH05", duration=duration_b, rate=rate)
    return [
        ClientScenario(0, mh04),
        ClientScenario(1, mh05, start_time=4.0, oracle_seed=9, imu_seed=13),
    ]


def _run(shaping=None, **cfg_kwargs):
    config = SlamShareConfig(
        camera_fps=10.0, render_video_frames=False, **cfg_kwargs
    )
    if shaping is not None:
        config.shaping = shaping
    session = SlamShareSession(_scenarios(), config, ate_sample_interval=0.5)
    return session.run()


# One shared run for the read-only assertions.
RESULT = _run()


class TestSlamShareSession:
    def test_all_clients_track(self):
        for outcome in RESULT.outcomes.values():
            assert outcome.frames_processed > 0
            assert outcome.frames_lost <= 2

    def test_server_ate_under_paper_bound(self):
        for cid in RESULT.outcomes:
            assert RESULT.client_ate(cid).rmse < 0.10  # paper: < 10 cm

    def test_client_display_ate_close_to_server(self):
        for cid in RESULT.outcomes:
            display = RESULT.client_ate(cid, use_display=True).rmse
            server = RESULT.client_ate(cid).rmse
            assert display < server + 0.05

    def test_second_client_merges(self):
        assert len(RESULT.merges) == 1
        merge = RESULT.merges[0]
        assert merge.client_id == 1
        assert merge.transform.scale == pytest.approx(1.0, abs=0.05)

    def test_merge_latency_under_200ms(self):
        # The headline claim: merge/update within 200 ms.
        assert RESULT.merges[0].merge_ms < 200.0

    def test_tracking_latency_realtime(self):
        for outcome in RESULT.outcomes.values():
            mean_ms = np.mean(outcome.tracking_latencies_ms)
            assert mean_ms < 33.0

    def test_global_ate_spikes_then_drops_at_merge(self):
        """The Fig. 10a shape: the live pooled ATE is large while client
        B's fragment floats in its own frame, then collapses at merge."""
        merge_t = RESULT.merges[0].session_time
        before = [v for t, v in RESULT.live_global_ate
                  if 4.5 < t < merge_t]
        after = [v for t, v in RESULT.live_global_ate if t > merge_t + 0.5]
        assert before and after
        assert max(before) > 0.10   # spike while unmerged (paper: 55 cm)
        assert max(after) < 0.10    # collapses post-merge (paper: ~1 cm)

    def test_shared_store_populated(self):
        stats = RESULT.server.store.stats()
        assert stats.n_keyframes == RESULT.server.global_map.n_keyframes
        assert stats.writes > 0

    def test_pose_rtt_small_on_ideal_link(self):
        for outcome in RESULT.outcomes.values():
            assert np.mean(outcome.pose_rtts_ms) < 40.0

    def test_client_cpu_far_below_full_slam(self):
        # Fig. 13: the SLAM-Share client is ~0.7% of ONE core.
        for outcome in RESULT.outcomes.values():
            cores = outcome.client.cpu.mean_cores()
            assert cores < 0.2

    def test_gpu_spatial_share(self):
        assert RESULT.server.gpu_share() == pytest.approx(0.5)

    def test_empty_scenarios_rejected(self):
        with pytest.raises(ValueError):
            SlamShareSession([])


class TestNetworkConditions:
    def test_delay_300ms_keeps_accuracy(self):
        """Fig. 12a/Table 2: SLAM-Share rides out 300 ms of added delay."""
        result = _run(shaping=PROFILE_DELAY_300MS)
        for cid in result.outcomes:
            assert result.client_ate(cid).rmse < 0.12
        # Pose RTTs actually reflect the delay.
        rtts = result.outcomes[0].pose_rtts_ms
        assert np.mean(rtts) > 600.0


class TestHolograms:
    def test_shared_frame_consistency(self):
        """Fig. 11b: with SLAM-Share all clients perceive the hologram at
        (nearly) the same real-world position."""
        frame_b = RESULT.client_frame(0)
        frame_c = RESULT.client_frame(1)
        hologram = RESULT.holograms.place(
            np.array([2.0, 1.0, 1.5]), client_id=0, timestamp=10.0
        )
        err = placement_error(hologram, frame_b, frame_c)
        assert err < 0.10

    def test_no_sharing_scatters_holograms(self):
        """Fig. 11a: private frames put the same coordinates meters apart."""
        # Client frames without merging: each client's own first-camera
        # frame related to the world by a different transform.
        mh04 = euroc_dataset("MH04", duration=6.0, rate=10.0)
        mh05 = euroc_dataset("MH05", duration=6.0, rate=10.0)
        frame_b = Sim3.from_se3(mh04.pose_cw(0).inverse())
        frame_c = Sim3.from_se3(mh05.pose_cw(0).inverse())
        from repro.core.holograms import Hologram

        hologram = Hologram(0, np.array([2.0, 1.0, 1.5]), 0, 0.0)
        err = placement_error(hologram, frame_b, frame_c)
        assert err > 1.0  # meters, as in the paper's 6.94 m example

    def test_registry(self):
        from repro.core.holograms import HologramRegistry

        registry = HologramRegistry()
        h = registry.place(np.array([1.0, 2.0, 3.0]), client_id=1, timestamp=5.0)
        assert registry.get(h.hologram_id) is h
        assert registry.get(99) is None
        assert len(registry) == 1

    def test_perceived_position_identity(self):
        from repro.core.holograms import Hologram

        h = Hologram(0, np.array([1.0, 2.0, 3.0]), 0, 0.0)
        assert np.allclose(perceived_position(h, Sim3.identity()), [1, 2, 3])


class TestBaselineSession:
    def test_baseline_runs_and_merges(self):
        config = SlamShareConfig(camera_fps=10.0, render_video_frames=False)
        baseline = BaselineConfig(hold_down_frames=40, hold_down_s=4.0)
        session = BaselineSession(_scenarios(), config, baseline)
        result = session.run()
        assert all(st.merged for st in result.clients.values())
        # Clients drop frames under compute pressure (the 15 FPS effect).
        assert any(st.frames_dropped > 0 for st in result.clients.values())

    def test_baseline_client_cpu_much_higher_than_slam_share(self):
        config = SlamShareConfig(camera_fps=10.0, render_video_frames=False)
        baseline = BaselineConfig(hold_down_frames=40)
        session = BaselineSession(_scenarios(), config, baseline)
        result = session.run()
        baseline_cores = result.clients[0].cpu.mean_cores()
        share_cores = RESULT.outcomes[0].client.cpu.mean_cores()
        assert baseline_cores > 10 * share_cores

    def test_baseline_sync_rounds_have_table4_components(self):
        config = SlamShareConfig(camera_fps=10.0, render_video_frames=False)
        baseline = BaselineConfig(hold_down_frames=40)
        session = BaselineSession(_scenarios(), config, baseline)
        result = session.run()
        rounds = [r for st in result.clients.values() for r in st.rounds]
        assert rounds
        for r in rounds:
            assert r.map_bytes > 0
            assert r.serialization_ms > 0
            assert r.deserialization_ms > r.serialization_ms
            assert r.merge_ms > 0
