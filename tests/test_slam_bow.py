"""Tests for the bag-of-words vocabulary and keyframe database."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.slam.bow import KeyframeDatabase, Vocabulary, default_vocabulary
from repro.vision.brief import DESCRIPTOR_BYTES, perturb_descriptor


def _descriptors(n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=(n, DESCRIPTOR_BYTES), dtype=np.uint8)


class TestVocabulary:
    def test_training_produces_words(self):
        vocab = Vocabulary(branching=4, depth=2)
        vocab.train(_descriptors(500), np.random.default_rng(0))
        assert vocab.n_words > 4

    def test_word_of_is_deterministic(self):
        vocab = default_vocabulary()
        d = _descriptors(1, seed=1)[0]
        assert vocab.word_of(d) == vocab.word_of(d)

    def test_words_of_matches_word_of(self):
        vocab = default_vocabulary()
        descs = _descriptors(50, seed=2)
        batch = vocab.words_of(descs)
        assert list(batch) == [vocab.word_of(d) for d in descs]

    def test_default_vocabulary_reproducible(self):
        # All processes must regenerate the identical tree (stands in for
        # every process loading the same ORB vocabulary file).
        v1 = default_vocabulary()
        v2 = default_vocabulary()
        descs = _descriptors(100, seed=3)
        assert np.array_equal(v1.words_of(descs), v2.words_of(descs))

    def test_similar_descriptors_share_words(self):
        vocab = default_vocabulary()
        rng = np.random.default_rng(4)
        base = _descriptors(100, seed=5)
        noisy = np.stack([perturb_descriptor(d, rng, 4) for d in base])
        same = (vocab.words_of(base) == vocab.words_of(noisy)).mean()
        # Quantization is noisy near cell boundaries; what matters for
        # place recognition is that agreement vastly exceeds the random
        # baseline (1/n_words ~ 0.2%).
        assert same > 0.4

    def test_transform_normalized(self):
        vocab = default_vocabulary()
        vector = vocab.transform(_descriptors(64, seed=6))
        assert sum(vector.values()) == pytest.approx(1.0)

    def test_transform_empty(self):
        assert default_vocabulary().transform(np.zeros((0, 32), np.uint8)) == {}

    def test_untrained_raises(self):
        with pytest.raises(RuntimeError):
            Vocabulary().word_of(_descriptors(1)[0])

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            Vocabulary(branching=1)
        with pytest.raises(ValueError):
            Vocabulary(depth=0)
        with pytest.raises(ValueError):
            Vocabulary(branching=8).train(_descriptors(4), np.random.default_rng(0))

    def test_score_self_is_one(self):
        vocab = default_vocabulary()
        vec = vocab.transform(_descriptors(40, seed=7))
        assert Vocabulary.score(vec, vec) == pytest.approx(1.0)

    def test_score_disjoint_is_zero(self):
        assert Vocabulary.score({1: 1.0}, {2: 1.0}) == 0.0
        assert Vocabulary.score({}, {1: 1.0}) == 0.0

    def test_score_same_place_beats_different_place(self):
        vocab = default_vocabulary()
        rng = np.random.default_rng(8)
        place_a = _descriptors(80, seed=9)
        # Same place seen again: each feature redetected with bit noise.
        place_a_again = np.stack([perturb_descriptor(d, rng, 6) for d in place_a])
        place_b = _descriptors(80, seed=10)
        va = vocab.transform(place_a)
        va2 = vocab.transform(place_a_again)
        vb = vocab.transform(place_b)
        assert Vocabulary.score(va, va2) > Vocabulary.score(va, vb)

    @given(st.integers(min_value=0, max_value=100))
    @settings(max_examples=10, deadline=None)
    def test_property_score_symmetric(self, seed):
        vocab = default_vocabulary()
        a = vocab.transform(_descriptors(30, seed=seed))
        b = vocab.transform(_descriptors(30, seed=seed + 1))
        assert Vocabulary.score(a, b) == pytest.approx(Vocabulary.score(b, a))


class TestKeyframeDatabase:
    def _db_with_places(self, n_places=5, seed=0):
        vocab = default_vocabulary()
        db = KeyframeDatabase(vocab)
        vectors = {}
        for place in range(n_places):
            vec = vocab.transform(_descriptors(60, seed=seed + place))
            db.add(place, vec)
            vectors[place] = vec
        return vocab, db, vectors

    def test_query_finds_same_place(self):
        vocab, db, vectors = self._db_with_places()
        rng = np.random.default_rng(1)
        base = _descriptors(60, seed=2)  # same as place 2
        revisit = np.stack([perturb_descriptor(d, rng, 6) for d in base])
        results = db.query(vocab.transform(revisit), min_score=0.0)
        assert results[0].keyframe_id == 2

    def test_exclusion(self):
        vocab, db, vectors = self._db_with_places()
        results = db.query(vectors[2], min_score=0.0, exclude={2})
        assert all(r.keyframe_id != 2 for r in results)

    def test_min_score_filters(self):
        vocab, db, vectors = self._db_with_places()
        results = db.query(vectors[0], min_score=0.99)
        assert [r.keyframe_id for r in results] == [0]

    def test_remove(self):
        vocab, db, vectors = self._db_with_places()
        db.remove(3)
        assert len(db) == 4
        results = db.query(vectors[3], min_score=0.0)
        assert all(r.keyframe_id != 3 for r in results)

    def test_max_results(self):
        vocab, db, vectors = self._db_with_places(n_places=8)
        results = db.query(vectors[0], min_score=0.0, max_results=3)
        assert len(results) <= 3

    def test_results_sorted_by_score(self):
        vocab, db, vectors = self._db_with_places()
        results = db.query(vectors[1], min_score=0.0)
        scores = [r.score for r in results]
        assert scores == sorted(scores, reverse=True)
