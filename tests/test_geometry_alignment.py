"""Tests for Umeyama/Horn alignment and trajectories."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    SE3,
    Sim3,
    Trajectory,
    TrajectoryPoint,
    alignment_rmse,
    horn_se3,
    quaternion,
    ransac_umeyama,
    so3,
    umeyama,
)


def _random_points(rng, n=30):
    return rng.normal(scale=2.0, size=(n, 3))


class TestUmeyama:
    def test_recovers_known_similarity(self):
        rng = np.random.default_rng(0)
        src = _random_points(rng)
        truth = Sim3(so3.random_rotation(rng), rng.normal(size=3), 1.9)
        est = umeyama(src, truth.apply(src))
        assert est.almost_equal(truth, tol=1e-8)

    def test_recovers_rigid_when_scale_disabled(self):
        rng = np.random.default_rng(1)
        src = _random_points(rng)
        truth = SE3(so3.random_rotation(rng), rng.normal(size=3))
        est = horn_se3(src, truth.apply(src))
        assert est.almost_equal(truth, rot_tol=1e-8, trans_tol=1e-8)

    def test_scale_fixed_to_one_without_scale(self):
        rng = np.random.default_rng(2)
        src = _random_points(rng)
        target = 3.0 * src  # pure scaling
        est = umeyama(src, target, with_scale=False)
        assert est.scale == 1.0

    def test_noise_robustness(self):
        rng = np.random.default_rng(3)
        src = _random_points(rng, n=200)
        truth = Sim3(so3.random_rotation(rng), rng.normal(size=3), 1.2)
        tgt = truth.apply(src) + rng.normal(scale=0.01, size=src.shape)
        est = umeyama(src, tgt)
        assert alignment_rmse(src, tgt, est) < 0.05
        assert abs(est.scale - truth.scale) < 0.01

    def test_rejects_too_few_points(self):
        with pytest.raises(ValueError):
            umeyama(np.zeros((2, 3)), np.zeros((2, 3)))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            umeyama(np.zeros((4, 3)), np.zeros((5, 3)))

    def test_rejects_degenerate_source(self):
        src = np.zeros((5, 3))
        with pytest.raises(ValueError):
            umeyama(src, src + 1.0)

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_property_random_similarity_recovered(self, seed):
        rng = np.random.default_rng(seed)
        src = _random_points(rng, n=10)
        # Guard against degenerate draws (collinear sets are measure-zero).
        truth = Sim3(so3.random_rotation(rng), rng.normal(size=3), float(rng.uniform(0.5, 2.0)))
        est = umeyama(src, truth.apply(src))
        assert alignment_rmse(src, truth.apply(src), est) < 1e-8


class TestRansacUmeyama:
    def test_rejects_outliers(self):
        rng = np.random.default_rng(4)
        src = _random_points(rng, n=60)
        truth = Sim3(so3.random_rotation(rng), rng.normal(size=3), 1.5)
        tgt = truth.apply(src)
        # Corrupt 30% of correspondences badly.
        outliers = rng.choice(60, size=18, replace=False)
        tgt[outliers] += rng.normal(scale=10.0, size=(18, 3))
        est, mask = ransac_umeyama(src, tgt, rng, inlier_threshold=0.1)
        assert est is not None
        assert mask.sum() >= 40
        assert abs(est.scale - truth.scale) < 0.05

    def test_returns_none_on_garbage(self):
        rng = np.random.default_rng(5)
        src = _random_points(rng, n=20)
        tgt = rng.normal(scale=50.0, size=(20, 3))
        est, mask = ransac_umeyama(src, tgt, rng, inlier_threshold=0.01, min_inliers=10)
        assert est is None and mask is None

    def test_too_few_points(self):
        rng = np.random.default_rng(6)
        est, mask = ransac_umeyama(np.zeros((2, 3)), np.zeros((2, 3)), rng)
        assert est is None


class TestTrajectory:
    def _make(self, n=10, dt=0.1):
        times = np.arange(n) * dt
        pos = np.column_stack([times, np.zeros(n), np.zeros(n)])  # 1 m/s along x
        return Trajectory.from_arrays(times, pos)

    def test_round_trip_arrays(self):
        traj = self._make()
        assert len(traj) == 10
        assert np.allclose(traj.positions[:, 0], traj.timestamps)

    def test_monotonic_enforced(self):
        with pytest.raises(ValueError):
            Trajectory(
                [
                    TrajectoryPoint(1.0, np.zeros(3), quaternion.identity()),
                    TrajectoryPoint(0.5, np.zeros(3), quaternion.identity()),
                ]
            )

    def test_append_enforces_order(self):
        traj = self._make(3)
        with pytest.raises(ValueError):
            traj.append(TrajectoryPoint(0.0, np.zeros(3), quaternion.identity()))

    def test_sample_interpolates_linearly(self):
        traj = self._make()
        p = traj.sample(0.05)
        assert p.position[0] == pytest.approx(0.05)

    def test_sample_clamps_at_ends(self):
        traj = self._make()
        assert traj.sample(-1.0).timestamp == 0.0
        assert traj.sample(99.0).timestamp == pytest.approx(0.9)

    def test_duration_and_path_length(self):
        traj = self._make()
        assert traj.duration() == pytest.approx(0.9)
        assert traj.path_length() == pytest.approx(0.9)

    def test_slice_time(self):
        traj = self._make()
        sub = traj.slice_time(0.25, 0.65)
        assert len(sub) == 4  # samples at 0.3, 0.4, 0.5, 0.6

    def test_resample(self):
        traj = self._make()
        re = traj.resample([0.05, 0.15, 0.25])
        assert len(re) == 3
        assert np.allclose(re.positions[:, 0], [0.05, 0.15, 0.25])

    def test_transformed_moves_positions(self):
        traj = self._make()
        shift = SE3(np.eye(3), np.array([0.0, 5.0, 0.0]))
        moved = traj.transformed(shift)
        assert np.allclose(moved.positions[:, 1], 5.0)

    def test_velocities_constant_speed(self):
        traj = self._make()
        vel = traj.velocities()
        assert np.allclose(vel[1:, 0], 1.0)

    def test_pose_conventions(self):
        p = TrajectoryPoint(
            0.0, np.array([1.0, 2.0, 3.0]), quaternion.identity()
        )
        # Body origin expressed in world == position.
        assert np.allclose(p.pose_wb().apply(np.zeros(3)), [1.0, 2.0, 3.0])
        assert np.allclose(p.pose_bw().apply(np.array([1.0, 2.0, 3.0])), np.zeros(3))
