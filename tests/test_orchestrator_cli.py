"""Tests for the multi-process orchestrator and the CLI."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.core.orchestrator import (
    Orchestrator,
    OrchestratorConfig,
    _make_keyframe,
)
from repro.slam.map import IdAllocator


class TestOrchestrator:
    def test_two_real_processes_share_one_region(self):
        """Spawns genuine OS processes that attach the named region and
        write keyframe records; the orchestrator reads them back."""
        config = OrchestratorConfig(
            region_size=8 * 1024 * 1024,
            partition_size=2 * 1024 * 1024,
            keyframes_per_client=3,
            n_features_per_keyframe=30,
        )
        results = Orchestrator(config).run(n_clients=2)
        assert set(results) == {0, 1}
        for client_id, keyframes in results.items():
            assert len(keyframes) == 3
            for index, kf in enumerate(keyframes):
                expected = _make_keyframe(client_id, index, 30)
                assert kf.keyframe_id == expected.keyframe_id
                assert kf.client_id == client_id
                assert np.allclose(kf.uv, expected.uv, atol=1e-4)
                assert np.array_equal(kf.descriptors, expected.descriptors)
                assert kf.pose_cw.almost_equal(expected.pose_cw, 1e-9, 1e-9)

    def test_id_ranges_disjoint_across_processes(self):
        config = OrchestratorConfig(
            region_size=8 * 1024 * 1024,
            partition_size=2 * 1024 * 1024,
            keyframes_per_client=2,
            n_features_per_keyframe=10,
        )
        results = Orchestrator(config).run(n_clients=3)
        all_ids = [kf.keyframe_id for kfs in results.values() for kf in kfs]
        assert len(set(all_ids)) == len(all_ids)
        for client_id, kfs in results.items():
            for kf in kfs:
                assert IdAllocator.owner_of(kf.keyframe_id) == client_id

    def test_region_too_small_rejected(self):
        config = OrchestratorConfig(region_size=1024, partition_size=1024)
        with pytest.raises(ValueError):
            Orchestrator(config).run(n_clients=2)


class TestCli:
    def test_parser_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["session", "--traces", "MH04", "MH05"])
        assert args.command == "session"
        assert args.traces == ["MH04", "MH05"]
        args = parser.parse_args(["baseline", "--hold-down-frames", "30"])
        assert args.hold_down_frames == 30

    def test_info_command(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "MH04" in out and "KITTI-00" in out
        assert "Mbit/s" in out

    def test_session_command_small(self, capsys):
        code = main([
            "session", "--traces", "MH04", "MH05",
            "--duration", "6", "--join-gap", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "client 0" in out and "client 1" in out
        assert "ATE" in out

    def test_baseline_command_small(self, capsys):
        code = main([
            "baseline", "--traces", "MH04",
            "--duration", "6", "--hold-down-frames", "20",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "baseline" in out and "sync rounds" in out

    def test_session_with_shaping(self, capsys):
        code = main([
            "session", "--traces", "MH04", "--duration", "4",
            "--shaping", "300 ms added delay",
        ])
        assert code == 0

    def test_unknown_trace_fails(self):
        with pytest.raises(ValueError):
            main(["session", "--traces", "MH99", "--duration", "2"])
