"""Observability-overhead gate: instrumentation must stay near-free.

Runs the same multi-client session three times —

* ``off``     — tracing and global metrics both disabled (the hot path
  pays one ``enabled`` attribute check per instrumentation site);
* ``metrics`` — global metrics on, tracing off (counters/histograms
  record, no spans);
* ``traced``  — frame-lifecycle tracing AND metrics on (every frame
  opens a trace, every stage attaches spans).

and compares wall-clock. A true *no-instrumentation* baseline would
require stripping the call sites, so ``off`` — the disabled path the
tentpole requires to stay one attribute check — is the reference.
Timings take the best of ``--rounds`` runs per mode (same process, same
data) to damp scheduler noise; machine-dependent absolute numbers are
reported, the gate is on *ratios*:

* ``off`` vs ``metrics``: metrics must not slow the session by more
  than ``--tolerance`` (default 10%);
* ``traced`` per-frame overhead vs ``off``: the added wall cost per
  processed frame must stay under ``--frame-budget`` (default 5%) of
  the ``off`` p50 server frame time, the ISSUE's enabled-path budget.

Usage::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --smoke --check
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict

from repro.core import ClientScenario, SlamShareSession
from repro.datasets import euroc_dataset
from repro.obs import get_metrics, get_tracer


def _scenarios(duration: float):
    rate = 10.0
    return [
        ClientScenario(0, euroc_dataset("MH04", duration=duration, rate=rate)),
        ClientScenario(1, euroc_dataset("MH05", duration=duration, rate=rate),
                       start_time=1.0, oracle_seed=9, imu_seed=13),
        ClientScenario(2, euroc_dataset("MH04", duration=duration, rate=rate),
                       start_time=2.0, oracle_seed=21, imu_seed=23),
        ClientScenario(3, euroc_dataset("V202", duration=duration, rate=rate),
                       start_time=3.0, oracle_seed=33, imu_seed=37),
    ]


def _run_mode(mode: str, duration: float, rounds: int) -> Dict[str, float]:
    """Best-of-N wall time for one instrumentation mode."""
    tracer = get_tracer()
    metrics = get_metrics()
    best_s = float("inf")
    frames = 0
    for _ in range(rounds):
        tracer.reset()
        metrics.reset()
        tracer.configure(enabled=(mode == "traced"))
        metrics.configure(enabled=(mode != "off"))
        start = time.perf_counter()
        result = SlamShareSession(_scenarios(duration)).run()
        elapsed = time.perf_counter() - start
        best_s = min(best_s, elapsed)
        frames = sum(o.frames_processed for o in result.outcomes.values())
    spans = len(tracer.spans)
    tracer.configure(enabled=False)
    metrics.configure(enabled=False)
    entry = {
        "wall_s": round(best_s, 4),
        "frames": frames,
        "per_frame_ms": round(best_s / max(frames, 1) * 1e3, 4),
        "spans": spans,
    }
    print(f"  {mode:<8} best-of-{rounds} {best_s:7.2f} s  "
          f"{entry['per_frame_ms']:8.3f} ms/frame  {spans} spans")
    return entry


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="short traces (CI-sized)")
    parser.add_argument("--rounds", type=int, default=3,
                        help="runs per mode; best is kept")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed metrics-on slowdown vs off (fraction)")
    parser.add_argument("--frame-budget", type=float, default=0.05,
                        help="allowed traced per-frame overhead vs off "
                             "(fraction of per-frame wall time)")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero when a budget is exceeded")
    parser.add_argument("--out", default=None,
                        help="write the JSON report here")
    args = parser.parse_args(argv)

    duration = 3.0 if args.smoke else 8.0
    print(f"obs-overhead ({'smoke' if args.smoke else 'full'}), "
          f"4 clients x {duration:.0f}s:")
    # Warm up caches/JIT-ish numpy paths once so mode order doesn't bias.
    _run_mode("warmup", 1.0, 1)
    report = {
        "schema": 1,
        "mode": "smoke" if args.smoke else "full",
        "modes": {
            mode: _run_mode(mode, duration, args.rounds)
            for mode in ("off", "metrics", "traced")
        },
    }
    off = report["modes"]["off"]
    metrics_mode = report["modes"]["metrics"]
    traced = report["modes"]["traced"]
    metrics_ratio = metrics_mode["wall_s"] / off["wall_s"] - 1.0
    traced_frame_overhead = (
        (traced["per_frame_ms"] - off["per_frame_ms"])
        / max(off["per_frame_ms"], 1e-9)
    )
    report["metrics_slowdown"] = round(metrics_ratio, 4)
    report["traced_frame_overhead"] = round(traced_frame_overhead, 4)
    print(f"  metrics slowdown vs off: {metrics_ratio * 100:+.1f}% "
          f"(budget {args.tolerance * 100:.0f}%)")
    print(f"  traced per-frame overhead vs off: "
          f"{traced_frame_overhead * 100:+.1f}% "
          f"(budget {args.frame_budget * 100:.0f}%)")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    if args.check:
        failures = []
        if metrics_ratio > args.tolerance:
            failures.append(
                f"metrics-on slowdown {metrics_ratio * 100:.1f}% exceeds "
                f"{args.tolerance * 100:.0f}% budget"
            )
        if traced_frame_overhead > args.frame_budget:
            failures.append(
                f"traced per-frame overhead {traced_frame_overhead * 100:.1f}%"
                f" exceeds {args.frame_budget * 100:.0f}% budget"
            )
        if failures:
            print("OBS OVERHEAD REGRESSION:")
            for line in failures:
                print(f"  {line}")
            return 1
        print("obs-overhead check: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
