"""Fig. 11: hologram positioning with and without map sharing.

Paper: user B places a hologram; when user C locates it, the only data
shared is the coordinate triple.  With SLAM-Share all clients perceive
it within centimeters of the truth; without sharing, C interprets the
coordinates in its own private frame and renders the hologram 6.94 m
away from where B put it.
"""

import numpy as np

from repro.core.holograms import Hologram, perceived_position, placement_error
from repro.datasets import euroc_dataset
from repro.geometry import Sim3


ANCHOR = np.array([2.0, 1.0, 1.5])


def test_fig11_hologram_consistency(euroc_session_result, benchmark):
    result = benchmark.pedantic(
        lambda: euroc_session_result, rounds=1, iterations=1
    )
    hologram = result.holograms.place(ANCHOR, client_id=1, timestamp=12.0)

    # --- (b) with SLAM-Share: all client frames coincide (global map).
    frames = {cid: result.client_frame(cid) for cid in result.outcomes}
    positions = {
        cid: perceived_position(hologram, frame) for cid, frame in frames.items()
    }
    placer = hologram.placed_by
    shared_errors = {
        cid: float(np.linalg.norm(positions[cid] - positions[placer]))
        for cid in positions
    }

    # --- (a) without sharing: each client's frame is its own first
    # camera (the paper's no-map-merging condition).
    mh04 = euroc_dataset("MH04", duration=2.0, rate=10.0)
    mh05 = euroc_dataset("MH05", duration=2.0, rate=10.0)
    private = {
        0: Sim3.from_se3(mh04.pose_cw(0).inverse()),
        1: Sim3.from_se3(mh05.pose_cw(0).inverse()),
    }
    lone = Hologram(99, ANCHOR, 1, 0.0)
    unshared_error = placement_error(lone, private[1], private[0])

    print("\nFig. 11 — perceived hologram positions")
    print("  (a) without sharing: viewer error "
          f"{unshared_error:.2f} m (paper: 6.94 m)")
    print("  (b) with SLAM-Share:")
    for cid, err in sorted(shared_errors.items()):
        print(f"        client {cid}: {err * 100:6.2f} cm from placer's spot")

    assert unshared_error > 1.0
    assert all(err < 0.15 for err in shared_errors.values())
    assert unshared_error > 10 * max(
        err for cid, err in shared_errors.items() if cid != placer
    )
