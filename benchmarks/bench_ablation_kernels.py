"""Ablation A4: real wall-clock speedup of the data-parallel kernels.

The cost models assume FAST and search-local-points parallelize well.
This bench demonstrates it on real arrays: our scalar reference loops
(the sequential CPU formulation) versus the vectorized whole-array
formulation (how the CUDA kernels are organized).  The numpy speedup is
a *lower bound* on GPU gains.
"""

import numpy as np
import pytest

from repro.gpu import time_fast_kernels, time_search_kernels
from repro.vision import render_frame
from repro.datasets import euroc_dataset
from repro.vision.fast import detect_fast_scalar, detect_fast_vectorized
from repro.vision.matching import (
    search_by_projection_scalar,
    search_by_projection_vectorized,
)


@pytest.fixture(scope="module")
def frame():
    ds = euroc_dataset("MH04", duration=1.0, rate=10.0)
    return render_frame(
        ds.world.positions, ds.world.ids, ds.camera, ds.pose_cw(0),
        rng=np.random.default_rng(0),
    ).pixels


def test_ablation_fast_scalar(frame, benchmark):
    benchmark.pedantic(
        lambda: detect_fast_scalar(frame[:120, :160], 20), rounds=2, iterations=1
    )


def test_ablation_fast_vectorized(frame, benchmark):
    benchmark.pedantic(
        lambda: detect_fast_vectorized(frame[:120, :160], 20),
        rounds=5, iterations=1,
    )


def test_ablation_search_scalar(benchmark):
    rng = np.random.default_rng(1)
    proj = rng.uniform(0, 320, (300, 2))
    uv = rng.uniform(0, 320, (250, 2))
    pd = rng.integers(0, 256, (300, 32), dtype=np.uint8)
    fd = rng.integers(0, 256, (250, 32), dtype=np.uint8)
    benchmark.pedantic(
        lambda: search_by_projection_scalar(proj, pd, uv, fd, radius=30.0),
        rounds=2, iterations=1,
    )


def test_ablation_search_vectorized(benchmark):
    rng = np.random.default_rng(1)
    proj = rng.uniform(0, 320, (300, 2))
    uv = rng.uniform(0, 320, (250, 2))
    pd = rng.integers(0, 256, (300, 32), dtype=np.uint8)
    fd = rng.integers(0, 256, (250, 32), dtype=np.uint8)
    benchmark.pedantic(
        lambda: search_by_projection_vectorized(proj, pd, uv, fd, radius=30.0),
        rounds=5, iterations=1,
    )


def test_ablation_kernel_speedups_summary(frame, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    fast = time_fast_kernels(frame[:120, :160], repeats=2)
    search = time_search_kernels(n_points=300, n_features=250, repeats=2)
    print("\nAblation A4 — scalar vs data-parallel kernels (wall-clock)")
    for t in (fast, search):
        print(f"  {t.name:<24} {t.scalar_s * 1e3:8.2f} ms -> "
              f"{t.vectorized_s * 1e3:8.2f} ms  ({t.speedup:5.1f}x)")
    assert fast.speedup > 3.0
    assert search.speedup > 1.5
