"""Reliability sweep: the transport loss knobs, actually exercised.

Two views of the reliability layer under increasingly hostile links:

* per-transfer: Table-4-style timed transfers over a lossy shaped link —
  completion now costs retransmissions (ARQ) instead of crashing, and
  the RTT inflation quantifies that cost;
* per-session: a two-client session where uplink drops are bridged by
  accumulated IMU deltas and a mid-session disconnect/rejoin is parked
  and resumed by the server.  Accuracy must degrade gently, never
  silently lose accounting.
"""

import numpy as np
import pytest

from repro.core import ClientScenario, SlamShareConfig, SlamShareSession
from repro.datasets import euroc_dataset
from repro.net import Link, ShapingProfile, SimClock, timed_transfer

LOSS_RATES = (0.0, 0.10, 0.20, 0.35)


def _transfer_rtts(loss_rate, n_transfers=30, n_bytes=200_000, seed=3):
    clock = SimClock()
    up = Link(clock, bandwidth_bps=18.7e6, delay_s=0.02,
              loss_rate=loss_rate, seed=seed)
    down = Link(clock, bandwidth_bps=18.7e6, delay_s=0.02,
                loss_rate=loss_rate, seed=seed + 1)
    rtts = [timed_transfer(clock, up, down, n_bytes)
            for _ in range(n_transfers)]
    return np.array(rtts), up.stats.messages_dropped


def test_bench_timed_transfer_loss_sweep(benchmark):
    results = benchmark.pedantic(
        lambda: {p: _transfer_rtts(p) for p in LOSS_RATES},
        rounds=1, iterations=1,
    )
    print("\nReliable transfer RTT vs loss (200 kB over 18.7 Mbit/s)")
    print(f"{'loss':>6} {'p50 (ms)':>10} {'max (ms)':>10} {'drops':>7}")
    base_p50 = None
    for loss, (rtts, drops) in results.items():
        p50 = float(np.median(rtts)) * 1e3
        if base_p50 is None:
            base_p50 = p50
        print(f"{loss:>6.2f} {p50:>10.1f} {float(rtts.max()) * 1e3:>10.1f} "
              f"{drops:>7}")
    # Every transfer completed (no exception), lossless is the floor.
    lossless = results[0.0][0]
    assert float(np.median(lossless)) <= float(np.median(results[0.35][0]))
    assert results[0.35][1] > 0


def _lossy_session(loss_rate, churn=False):
    scenarios = [
        ClientScenario(
            0, euroc_dataset("MH04", duration=12.0, rate=10.0),
            offline_windows=((5.0, 7.0),) if churn else (),
        ),
        ClientScenario(
            1, euroc_dataset("MH05", duration=9.0, rate=10.0),
            start_time=3.0, oracle_seed=9, imu_seed=13,
        ),
    ]
    config = SlamShareConfig(
        camera_fps=10.0, render_video_frames=False,
        shaping=ShapingProfile(f"loss {loss_rate:.0%}", loss_rate=loss_rate),
    )
    return SlamShareSession(scenarios, config).run()


@pytest.mark.parametrize("churn", [False, True], ids=["steady", "churn"])
def test_bench_session_loss_sweep(churn, benchmark):
    results = benchmark.pedantic(
        lambda: {p: _lossy_session(p, churn=churn) for p in LOSS_RATES},
        rounds=1, iterations=1,
    )
    label = "with disconnect/rejoin" if churn else "steady clients"
    print(f"\nSession reliability vs uplink loss ({label})")
    print(f"{'loss':>6} {'drops':>7} {'recovered':>10} {'offline':>8} "
          f"{'ATE0 (cm)':>10} {'ATE1 (cm)':>10}")
    for loss, result in results.items():
        o = result.outcomes[0]
        print(f"{loss:>6.2f} {o.uplink_drops:>7} {o.frames_recovered:>10} "
              f"{o.frames_offline:>8} "
              f"{result.client_ate(0).rmse * 100:>10.2f} "
              f"{result.client_ate(1).rmse * 100:>10.2f}")
    for loss, result in results.items():
        for cid in result.outcomes:
            assert result.client_ate(cid).rmse < 0.15
        if loss > 0:
            # The loss knob is exercised and accounted, not absorbed.
            assert result.outcomes[0].uplink_drops > 0
            assert result.outcomes[0].frames_recovered > 0
    if churn:
        heavy = results[0.35].outcomes[0]
        assert heavy.disconnects == 1 and heavy.rejoins == 1
