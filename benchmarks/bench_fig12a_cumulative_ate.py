"""Fig. 12a: cumulative ATE under network shaping vs single-user ORB-SLAM3.

Paper: from user B's (MH05) perspective, SLAM-Share's cumulative ATE
under 300 ms added delay or 18.7 / 9.4 Mbit/s bandwidth caps matches or
beats the single-user ORB-SLAM3 line — the uplink is ~1-2 Mbit/s and
the IMU rides out the delay, so shaping barely matters.
"""

import numpy as np

from repro.core import SlamShareSession
from repro.datasets import euroc_dataset
from repro.metrics import absolute_trajectory_error, cumulative_ate_series
from repro.net import PROFILE_BW_9_4, PROFILE_BW_18_7, PROFILE_DELAY_300MS, PROFILE_IDEAL
from tests.test_slam_system import run_system

from .conftest import RATE, euroc_scenarios, share_config

PROFILES = (PROFILE_IDEAL, PROFILE_DELAY_300MS, PROFILE_BW_18_7, PROFILE_BW_9_4)


def test_fig12a_network_conditions(benchmark):
    def sweep():
        curves = {}
        for profile in PROFILES:
            session = SlamShareSession(
                euroc_scenarios(duration_a=16.0, duration_b=12.0),
                share_config(shaping=profile),
            )
            result = session.run()
            # Skip the VI-initialization warmup: until the first server
            # fix arrives (one RTT), the client dead-reckons from an
            # unknown (zero) velocity — real VI systems likewise exclude
            # their init window from evaluation.
            est = result.outcomes[1].display_trajectory().slice_time(2.0, 1e9)
            gt = result.outcomes[1].scenario.dataset.ground_truth
            eval_times = np.arange(4.0, 12.0, 2.0)
            curves[profile.name] = {
                "series": cumulative_ate_series(est, gt, eval_times),
                "final": absolute_trajectory_error(est, gt).rmse,
            }
        return curves

    curves = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # Single-user vanilla ORB-SLAM3 stand-in on the same trajectory.
    ds = euroc_dataset("MH05", duration=12.0, rate=RATE)
    single, _ = run_system(ds)
    single_ate = absolute_trajectory_error(
        single.estimated_trajectory(), ds.ground_truth
    ).rmse

    print("\nFig. 12a — user B cumulative ATE under shaping")
    print(f"  single-user ORB-SLAM3: {single_ate * 100:.2f} cm")
    for name, data in curves.items():
        series = "  ".join(
            f"{t:.0f}s:{v * 100:.1f}" for t, v in data["series"]
        )
        print(f"  {name:<24} final {data['final'] * 100:6.2f} cm   [{series}]")

    for name, data in curves.items():
        # SLAM-Share under any shaping stays comparable to single-user
        # ORB-SLAM3 (paper: 'about the same or better').
        assert data["final"] < max(3.0 * single_ate, 0.10)
