"""Ablation A2: merge trigger policy — all keyframes vs newest-only.

Paper §4.3.1: vanilla ORB-SLAM3 only checks the *newest* active keyframe
for merge opportunities, so a late-joining client with an existing map
must wait until it happens to revisit overlap.  SLAM-Share iterates over
every keyframe in the joining map (Alg. 2 line 6-7), merging immediately
upon joining.  We measure the success rate and the work done.
"""


from repro.slam import MapMerger, MergerConfig
from tests.test_slam_merging import build_two_clients


def _clients_with_limited_recent_overlap():
    """Client B's *latest* keyframes are in fresh territory; the overlap
    with the global map sits in B's earlier keyframes."""
    return build_two_clients(duration=12.0)


def test_ablation_merge_trigger_policy(benchmark):
    def run_both():
        outcomes = {}
        for check_all in (True, False):
            (ds_a, sys_a), (ds_b, sys_b) = _clients_with_limited_recent_overlap()
            merger = MapMerger(
                sys_a.map, sys_a.database, ds_a.camera,
                MergerConfig(check_all_keyframes=check_all),
            )
            result = merger.merge_maps(sys_b.map, client_id=1)
            outcomes[check_all] = result
        return outcomes

    outcomes = benchmark.pedantic(run_both, rounds=1, iterations=1)
    all_kf = outcomes[True]
    newest = outcomes[False]

    print("\nAblation A2 — merge trigger policy")
    print(f"  SLAM-Share (all keyframes): success={all_kf.success}, "
          f"checked={all_kf.n_keyframes_checked}, "
          f"correspondences={all_kf.n_correspondences}")
    print(f"  vanilla (newest only)     : success={newest.success}, "
          f"checked={newest.n_keyframes_checked}")

    # SLAM-Share always merges a joining overlapping map.
    assert all_kf.success
    # The newest-only policy inspects at most one keyframe; whether it
    # succeeds depends on where the client happens to be *right now*.
    assert newest.n_keyframes_checked <= 1


def test_ablation_all_keyframes_finds_early_overlap(benchmark):
    """With all-keyframe checking, the merge anchor can be any keyframe —
    including old ones the newest-only policy would never revisit."""
    (ds_a, sys_a), (ds_b, sys_b) = _clients_with_limited_recent_overlap()
    merger = MapMerger(sys_a.map, sys_a.database, ds_a.camera,
                       MergerConfig(check_all_keyframes=True))
    result = benchmark.pedantic(
        lambda: merger.merge_maps(sys_b.map, client_id=1),
        rounds=1, iterations=1,
    )
    assert result.success
    kf_ids = sorted(
        kf.keyframe_id for kf in sys_a.map.keyframes_of_client(1)
    )
    rank = kf_ids.index(result.merge_keyframe_id)
    print(f"\nmerge anchored on client B's keyframe #{rank} "
          f"of {len(kf_ids)} (checked {result.n_keyframes_checked})")
    assert result.n_keyframes_checked >= 1
