"""Shared fixtures for the paper-reproduction benchmarks.

Sessions are expensive (pure-Python SLAM), so multi-client runs are
built once per pytest session and shared by every bench that reads
them.  All runs use shortened traces at 10 FPS — the geometry, overlap
structure and network behaviour of the paper's scenarios are preserved;
EXPERIMENTS.md records the scaling.
"""

from __future__ import annotations

import pytest

from repro.core import (
    BaselineConfig,
    BaselineSession,
    ClientScenario,
    SlamShareConfig,
    SlamShareSession,
)
from repro.datasets import euroc_dataset, kitti_dataset

RATE = 10.0
BENCH_SEED = 7


def euroc_scenarios(duration_a=18.0, duration_b=14.0, duration_c=10.0,
                    three_clients=False):
    """The Fig. 10a scenario: A starts, B joins, (C joins later)."""
    scenarios = [
        ClientScenario(0, euroc_dataset("MH04", duration=duration_a, rate=RATE)),
        ClientScenario(
            1,
            euroc_dataset("MH05", duration=duration_b, rate=RATE),
            start_time=4.0,
            oracle_seed=9,
            imu_seed=13,
        ),
    ]
    if three_clients:
        scenarios.append(
            ClientScenario(
                2,
                euroc_dataset("MH04", duration=duration_c, rate=RATE),
                start_time=9.0,
                oracle_seed=21,
                imu_seed=23,
            )
        )
    return scenarios


def kitti_scenarios(duration=14.0):
    """Fig. 10c: KITTI-05 split three ways around one circuit."""
    return [
        ClientScenario(
            0, kitti_dataset("KITTI-05", duration=duration, rate=RATE,
                             start_arclength=0.0),
        ),
        ClientScenario(
            1,
            kitti_dataset("KITTI-05", duration=duration, rate=RATE,
                          start_arclength=60.0),
            start_time=4.0, oracle_seed=9, imu_seed=13,
        ),
        ClientScenario(
            2,
            kitti_dataset("KITTI-05", duration=duration, rate=RATE,
                          start_arclength=120.0),
            start_time=8.0, oracle_seed=21, imu_seed=23,
        ),
    ]


def share_config(**kwargs) -> SlamShareConfig:
    defaults = dict(camera_fps=RATE, render_video_frames=False)
    defaults.update(kwargs)
    return SlamShareConfig(**defaults)


@pytest.fixture(scope="session")
def euroc_session_result():
    session = SlamShareSession(
        euroc_scenarios(three_clients=True), share_config(),
        ate_sample_interval=0.5,
    )
    return session.run()


@pytest.fixture(scope="session")
def kitti_session_result():
    session = SlamShareSession(
        kitti_scenarios(), share_config(), ate_sample_interval=0.5
    )
    return session.run()


@pytest.fixture(scope="session")
def baseline_session_result():
    session = BaselineSession(
        euroc_scenarios(),
        share_config(),
        BaselineConfig(hold_down_frames=50, hold_down_s=5.0),
    )
    return session.run()
