"""Fig. 13: client CPU usage — baseline vs SLAM-Share.

Paper: over the MH05 trajectory the baseline client (full local SLAM)
holds ~25% of a 40-core machine (~10 cores) while the SLAM-Share client
(IMU propagation + video encode) uses ~0.7% of one core — a ~35x gap.
We reproduce it from the operation accounting of the two client types
in their respective sessions.
"""


from repro.metrics.cpu import SERVER_CORES


def test_fig13_client_cpu(euroc_session_result, baseline_session_result,
                          benchmark):
    share, baseline = benchmark.pedantic(
        lambda: (euroc_session_result, baseline_session_result),
        rounds=1, iterations=1,
    )
    # User B in both systems.
    share_client = share.outcomes[1].client
    baseline_client = baseline.clients[1]

    share_cores = share_client.cpu.mean_cores()
    baseline_cores = baseline_client.cpu.mean_cores()
    ratio = baseline_cores / max(share_cores, 1e-9)

    print("\nFig. 13 — client CPU (mean busy cores, 40-core machine)")
    print(f"  baseline (full SLAM on device): {baseline_cores:7.3f} cores "
          f"({100 * baseline_cores / SERVER_CORES:.2f}% of machine)")
    print(f"  SLAM-Share (IMU + encode)     : {share_cores:7.4f} cores "
          f"({100 * share_cores / SERVER_CORES:.4f}% of machine)")
    print(f"  reduction: {ratio:.0f}x (paper: ~35x)")

    # Paper shape: order-of-magnitude-plus reduction; SLAM-Share client
    # well under one core.
    assert share_cores < 0.2
    assert ratio > 10.0


def test_fig13_cpu_stable_over_time(baseline_session_result, benchmark):
    """The baseline's load is sustained, not a startup transient."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    state = baseline_session_result.clients[0]
    samples = [s.utilization_pct for s in state.cpu.samples]
    assert samples
    assert min(samples) >= 0.0
