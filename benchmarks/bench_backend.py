"""Wall-clock perf harness for the mapping back-end.

Times local bundle adjustment and pose-graph optimization with a
selected kernel tier (``--backend vectorized`` by default, or ``gpu``)
against the scalar reference loops, plus the batched SE(3) log as a
geometry microbenchmark, and writes a JSON baseline
(``BENCH_PR5.json`` / ``BENCH_PR10.json``) in the style of
``bench_wallclock.py``.

Usage::

    PYTHONPATH=src python benchmarks/bench_backend.py                # full run
    PYTHONPATH=src python benchmarks/bench_backend.py --smoke        # CI-sized
    PYTHONPATH=src python benchmarks/bench_backend.py --smoke \
        --check BENCH_PR5.json                                       # regression gate
    PYTHONPATH=src python benchmarks/bench_backend.py --smoke \
        --backend gpu --check BENCH_PR10.json                        # gpu tier

The regression gate compares *speedups* (fast tier vs scalar, measured
in the same process) rather than absolute milliseconds, so it is stable
across machines: it fails when any op's measured speedup drops below
half of the committed baseline's.  Full (non-smoke) runs additionally
enforce the absolute acceptance floors: >= 5x on local BA (30 keyframes
/ 2000 points) and >= 3x on the pose graph (200 keyframes).

``--backend gpu`` routes the fast tier through the array-module
dispatch layer (:mod:`repro.backend`).  Equivalence against scalar is
asserted on every run regardless of hardware (without a device, "gpu"
*is* the vectorized path); the speedup gate and floors are only armed
when a real device module is present, since the fallback's speedups
are vectorized's.  With a device (real or ``--fake-device``), every op
also records per-kernel transfer accounting (upload/download counts
and bytes, staging-cache hits, measured kernel wall time).
"""

from __future__ import annotations

import argparse
import copy
import json
import sys
import time
from typing import Callable, Dict, List

import numpy as np

from repro.backend import resolve_backend, use_array_module
from repro.geometry import SE3, se3_batch, so3
from repro.slam import IdAllocator, SlamMap
from repro.slam.bundle_adjustment import local_bundle_adjustment
from repro.slam.keyframe import KeyFrame
from repro.slam.mappoint import MapPoint
from repro.slam.pose_graph import PoseGraphEdge, optimize_pose_graph
from repro.vision import PinholeCamera
from repro.vision.brief import DESCRIPTOR_BYTES

# Absolute speedup floors from the PR's acceptance criteria, enforced
# on full-sized runs only (smoke sizes are too small to hit them).
FLOORS = {"local_ba": 5.0, "pose_graph": 3.0}


# ----------------------------------------------------------- scene builders
def build_ba_scene(n_kfs: int, n_points: int, seed: int = 0):
    """A camera translating along a point corridor; every point is seen
    by several keyframes, so the intersection step has real work."""
    rng = np.random.default_rng(seed)
    cam = PinholeCamera.ideal(320, 240)
    length = 0.25 * n_kfs
    world = np.column_stack(
        [
            rng.uniform(-3, 3 + length, n_points),
            rng.uniform(-2, 2, n_points),
            rng.uniform(4, 12, n_points),
        ]
    )
    slam_map = SlamMap()
    kf_alloc, pt_alloc = IdAllocator(0), IdAllocator(0)
    pids = []
    for i in range(n_points):
        point = MapPoint(
            point_id=pt_alloc.allocate(),
            position=world[i] + rng.normal(scale=0.05, size=3),
            descriptor=rng.integers(0, 256, DESCRIPTOR_BYTES, dtype=np.uint8),
        )
        slam_map.add_mappoint(point)
        pids.append(point.point_id)
    for k in range(n_kfs):
        pose = SE3(
            so3.exp(np.array([0.0, 0.02 * k, 0.0])),
            np.array([0.25 * k, 0.0, 0.0]),
        )
        uv, depth, valid = cam.project_world(world, pose)
        idx = np.nonzero(valid)[0]
        kf = KeyFrame(
            keyframe_id=kf_alloc.allocate(),
            timestamp=float(k),
            pose_cw=pose.perturb(rng.normal(scale=0.02, size=6))
            if k > 0 else pose,
            uv=uv[idx],
            descriptors=np.zeros((len(idx), DESCRIPTOR_BYTES), dtype=np.uint8),
            depths=depth[idx],
            point_ids=np.array([pids[i] for i in idx], dtype=np.int64),
        )
        for feat_i, world_i in enumerate(idx):
            slam_map.mappoints[pids[world_i]].add_observation(
                kf.keyframe_id, feat_i
            )
        slam_map.add_keyframe(kf)
    return slam_map, cam


def build_pose_graph_scene(n_kfs: int, points_per_kf: int = 8, seed: int = 0):
    """A drifted keyframe chain with loop edges carrying the correction."""
    rng = np.random.default_rng(seed)
    slam_map = SlamMap()
    kf_alloc, pt_alloc = IdAllocator(0), IdAllocator(0)
    clean_poses = []
    for k in range(n_kfs):
        pose = SE3(
            so3.exp(np.array([0.0, 0.01 * k, 0.0])),
            np.array([0.5 * k, 0.0, 0.0]),
        )
        clean_poses.append(pose)
        point_ids = np.full(points_per_kf, -1, dtype=np.int64)
        for i in range(points_per_kf):
            point = MapPoint(
                point_id=pt_alloc.allocate(),
                position=rng.normal(size=3) + np.array([0.5 * k, 0.0, 6.0]),
                descriptor=rng.integers(
                    0, 256, DESCRIPTOR_BYTES, dtype=np.uint8
                ),
            )
            slam_map.add_mappoint(point)
            point_ids[i] = point.point_id
        kf = KeyFrame(
            keyframe_id=kf_alloc.allocate(),
            timestamp=float(k),
            pose_cw=pose,
            uv=rng.uniform(0, 320, size=(points_per_kf, 2)),
            descriptors=np.zeros(
                (points_per_kf, DESCRIPTOR_BYTES), dtype=np.uint8
            ),
            depths=rng.uniform(1, 10, size=points_per_kf),
            point_ids=point_ids,
        )
        for i in range(points_per_kf):
            slam_map.mappoints[int(point_ids[i])].add_observation(
                kf.keyframe_id, i
            )
        slam_map.add_keyframe(kf)
    ordered = sorted(slam_map.keyframes)
    edges = [
        PoseGraphEdge(
            a, b, clean_poses[i] * clean_poses[i + 1].inverse(),
            weight=20.0,
        )
        for i, (a, b) in enumerate(zip(ordered, ordered[1:]))
    ]
    stride = max(n_kfs // 4, 2)
    for i in range(stride, n_kfs, stride):
        edges.append(
            PoseGraphEdge(
                ordered[i], ordered[0],
                clean_poses[i] * clean_poses[0].inverse(),
                weight=120.0, is_loop_edge=True,
            )
        )
    # Inject drift so the sweeps have a real correction to distribute.
    for k, kf_id in enumerate(ordered[1:], start=1):
        kf = slam_map.keyframes[kf_id]
        kf.pose_cw = kf.pose_cw.perturb(rng.normal(scale=0.003 * k, size=6))
    return slam_map, edges, ordered


# ----------------------------------------------------------------- timing
def _stats(samples: List[float]) -> Dict[str, float]:
    arr = np.asarray(samples)
    return {
        "p50_ms": round(float(np.percentile(arr, 50)), 4),
        "p95_ms": round(float(np.percentile(arr, 95)), 4),
    }


def _time_pooled(template, fn: Callable, repeats: int) -> List[float]:
    """Time ``fn(map_copy)`` on fresh deep copies so the (mutating) call
    always starts from the same state and copy cost stays untimed."""
    pool = [copy.deepcopy(template) for _ in range(repeats + 1)]
    fn(pool[0])  # warmup
    samples = []
    for arg in pool[1:]:
        start = time.perf_counter()
        fn(arg)
        samples.append((time.perf_counter() - start) * 1e3)
    return samples


def _transfer_dict(am) -> Dict[str, object]:
    t = am.transfers
    kernels = {}
    for timing in am.kernel_timings:
        entry = kernels.setdefault(
            timing.name, {"calls": 0, "wall_ms": 0.0}
        )
        entry["calls"] += 1
        entry["wall_ms"] = round(entry["wall_ms"] + timing.wall_s * 1e3, 4)
    return {
        "to_device": t.to_device,
        "to_host": t.to_host,
        "bytes_to_device": t.bytes_to_device,
        "bytes_to_host": t.bytes_to_host,
        "staging_hits": t.staging_hits,
        "transfer_wall_ms": round(t.transfer_wall_s * 1e3, 4),
        "kernels": kernels,
    }


def _op_entry(name: str, template, naive: Callable, fast: Callable,
              repeats: int, detail: str, fast_label: str = "vectorized",
              am=None) -> Dict[str, object]:
    naive_stats = _stats(_time_pooled(template, naive, repeats))
    if am is not None:
        am.reset_counters()
    fast_stats = _stats(_time_pooled(template, fast, repeats))
    speedup = naive_stats["p50_ms"] / max(fast_stats["p50_ms"], 1e-9)
    print(f"  {name:<22} scalar p50 {naive_stats['p50_ms']:>10.3f} ms   "
          f"{fast_label} p50 {fast_stats['p50_ms']:>9.3f} ms   "
          f"{speedup:>7.1f}x")
    entry = {
        "detail": detail,
        "naive": naive_stats,
        "fast": fast_stats,
        "speedup": round(speedup, 2),
    }
    if am is not None:
        entry["transfers"] = _transfer_dict(am)
    return entry


def _assert_ba_equivalent(slam_map, cam, window, fixed,
                          fast_backend: str = "vectorized",
                          tol: float = 1e-9) -> None:
    map_s, map_v = copy.deepcopy(slam_map), copy.deepcopy(slam_map)
    local_bundle_adjustment(
        map_s, cam, window, fixed_keyframe_ids=fixed, backend="scalar"
    )
    local_bundle_adjustment(
        map_v, cam, window, fixed_keyframe_ids=fixed, backend=fast_backend
    )
    for pid in map_s.mappoints:
        diff = np.abs(
            map_s.mappoints[pid].position - map_v.mappoints[pid].position
        ).max()
        assert diff < tol, f"BA backends diverged on point {pid}: {diff}"


def _assert_pg_equivalent(slam_map, edges, fixed,
                          fast_backend: str = "vectorized",
                          tol: float = 1e-9) -> None:
    map_s, map_v = copy.deepcopy(slam_map), copy.deepcopy(slam_map)
    optimize_pose_graph(map_s, edges, fixed=fixed, backend="scalar")
    optimize_pose_graph(map_v, edges, fixed=fixed, backend=fast_backend)
    for kf_id in map_s.keyframes:
        pa = map_s.keyframes[kf_id].pose_cw
        pb = map_v.keyframes[kf_id].pose_cw
        diff = max(
            np.abs(pa.rotation - pb.rotation).max(),
            np.abs(pa.translation - pb.translation).max(),
        )
        assert diff < tol, f"pose-graph backends diverged on kf {kf_id}: {diff}"


def bench_backend(smoke: bool, backend: str = "vectorized",
                  am=None) -> Dict[str, Dict[str, object]]:
    """Benchmark ``backend``'s kernels against the scalar reference.

    ``am`` is the active device array module when the gpu tier actually
    runs on a device (None otherwise); it only adds transfer accounting
    to the report — the kernels find it through the registry.
    """
    repeats = 3 if smoke else 5
    # Device rounding differs from fused-multiply-add'd host numpy, so
    # the gpu tier gets the float tolerance from the acceptance criteria
    # (<= 1e-6); without a device the fallback stays bit-exact.
    tol = 1e-6 if (backend == "gpu" and am is not None) else 1e-9
    ops: Dict[str, Dict[str, object]] = {}
    print(f"back-end benchmarks (wall-clock), fast tier = {backend!r}:")

    # --- local bundle adjustment -------------------------------------
    n_kfs, n_points = (8, 300) if smoke else (30, 2000)
    slam_map, cam = build_ba_scene(n_kfs, n_points)
    window = sorted(slam_map.keyframes)
    fixed = {window[0]}
    _assert_ba_equivalent(slam_map, cam, window, fixed, backend, tol)
    ops["local_ba"] = _op_entry(
        "local_ba",
        slam_map,
        lambda m: local_bundle_adjustment(
            m, cam, window, fixed_keyframe_ids=fixed, backend="scalar"
        ),
        lambda m: local_bundle_adjustment(
            m, cam, window, fixed_keyframe_ids=fixed, backend=backend
        ),
        repeats,
        f"{n_kfs} keyframes / {n_points} points, scatter-add intersection "
        "vs per-point loops",
        fast_label=backend,
        am=am,
    )

    # --- pose-graph optimization -------------------------------------
    n_pg = 30 if smoke else 200
    pg_map, edges, ordered = build_pose_graph_scene(n_pg)
    pg_fixed = {ordered[0]}
    _assert_pg_equivalent(pg_map, edges, pg_fixed, backend, tol)

    def run_pg(pg_backend):
        def run(m):
            return optimize_pose_graph(
                m, edges, fixed=pg_fixed, backend=pg_backend
            )
        return run

    ops["pose_graph"] = _op_entry(
        "pose_graph",
        pg_map,
        run_pg("scalar"),
        run_pg(backend),
        repeats,
        f"{n_pg} keyframes, {len(edges)} edges, batched sweeps vs "
        "per-node loops",
        fast_label=backend,
        am=am,
    )

    # --- batched SE(3) log (geometry microbenchmark) ------------------
    n_poses = 500 if smoke else 5000
    rng = np.random.default_rng(5)
    poses = [SE3.exp(rng.normal(scale=0.4, size=6)) for _ in range(n_poses)]
    rot, trans = se3_batch.pack(poses)
    scalar_rows = np.array([p.log() for p in poses])
    if am is not None:
        rot_d, trans_d = am.to_device(rot), am.to_device(trans)
        batched = am.to_host(se3_batch.log(rot_d, trans_d, am=am))

        def fast_log(_unused):
            return se3_batch.log(rot_d, trans_d, am=am)
    else:
        batched = se3_batch.log(rot, trans)

        def fast_log(_unused):
            return se3_batch.log(rot, trans)
    assert np.abs(batched - scalar_rows).max() < tol
    ops["se3_log"] = _op_entry(
        "se3_log",
        None,
        lambda _unused: [p.log() for p in poses],
        fast_log,
        repeats,
        f"{n_poses} poses, batched log vs per-object log",
        fast_label=backend,
        am=am,
    )
    return ops


def check_regression(report: Dict, baseline_path: str) -> int:
    """Fail (non-zero) if any op's speedup halved vs the baseline.

    Speedups shrink with problem size, so smoke runs compare against the
    baseline's ``smoke_ops`` section, full runs against ``ops``.  Full
    runs additionally enforce the absolute ``FLOORS``.

    When the report's speedup gate is disarmed (gpu tier without a real
    device: the fallback's speedups are just vectorized's and CI has no
    GPU), only the equivalence booleans gate — they were asserted
    during the run, so reaching here means they held.
    """
    with open(baseline_path, "r", encoding="utf-8") as fh:
        baseline = json.load(fh)
    if not report.get("speedup_gate_armed", True):
        missing = [op for op, ok in report.get("equivalence", {}).items()
                   if not ok]
        if missing:
            print(f"EQUIVALENCE FAILURES: {missing}")
            return 1
        print(f"equivalence check [{report['backend']}]: ok "
              f"(speedup gate disarmed: no device)")
        return 0
    section = "smoke_ops" if report["mode"] == "smoke" else "ops"
    baseline_ops = baseline.get(section) or baseline.get("ops", {})
    failures = []
    for op, entry in baseline_ops.items():
        base_speedup = entry.get("speedup")
        if base_speedup is None:
            continue
        current = report["ops"].get(op, {}).get("speedup")
        if current is None:
            failures.append(f"{op}: missing from current run")
            continue
        if current < base_speedup / 2.0:
            failures.append(
                f"{op}: speedup {current:.1f}x < half of baseline "
                f"{base_speedup:.1f}x"
            )
    if report["mode"] == "full":
        for op, floor in FLOORS.items():
            current = report["ops"].get(op, {}).get("speedup", 0.0)
            if current < floor:
                failures.append(
                    f"{op}: speedup {current:.1f}x below acceptance "
                    f"floor {floor:.0f}x"
                )
    if failures:
        print("PERF REGRESSION:")
        for line in failures:
            print(f"  {line}")
        return 1
    print(f"regression check vs {baseline_path} [{section}]: ok "
          f"({len(baseline_ops)} ops)")
    return 0


def _resolve_bench_module(backend: str, fake_device: bool):
    """(array module or None, device label or None) for the gpu tier."""
    if backend != "gpu":
        return None, None
    override = None
    if fake_device:
        from repro.backend.fake_xp import make_fake_array_module

        override = make_fake_array_module()
    plan = resolve_backend("gpu", array_module=override)
    if plan.on_device:
        return plan.array_module, plan.array_module.device_label
    return None, None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small sizes / few repeats (CI)")
    parser.add_argument("--backend", default="vectorized",
                        choices=("vectorized", "gpu"),
                        help="fast tier to benchmark against scalar")
    parser.add_argument("--fake-device", action="store_true",
                        help="run the gpu tier through the fake device "
                             "module (exercises the device code paths and "
                             "transfer accounting without hardware)")
    parser.add_argument("--out", default=None,
                        help="write the JSON report here (e.g. BENCH_PR5.json)")
    parser.add_argument("--check", default=None, metavar="BASELINE",
                        help="compare speedups against a committed baseline; "
                             "exit non-zero on a >2x regression")
    args = parser.parse_args(argv)

    am, device = _resolve_bench_module(args.backend, args.fake_device)
    # Without a device the gpu tier falls back to the vectorized
    # kernels: speedups would just measure vectorized against itself,
    # so the regression gate only arms when a device is present (and
    # never on the fake module, whose wrapping adds pure overhead).
    gate_armed = args.backend != "gpu" or (am is not None
                                           and not args.fake_device)

    def run(smoke: bool):
        if am is not None:
            with use_array_module(am):
                return bench_backend(smoke, backend=args.backend, am=am)
        return bench_backend(smoke, backend=args.backend, am=None)

    ops = run(args.smoke)
    report = {
        "schema": 2,
        "mode": "smoke" if args.smoke else "full",
        "backend": args.backend,
        "device": device,
        "speedup_gate_armed": gate_armed,
        "generated_by": "benchmarks/bench_backend.py",
        "ops": ops,
        # the per-op asserts raise on divergence, so reaching this dict
        # means every op matched scalar within tolerance
        "equivalence": {op: True for op in ops},
    }
    if not args.smoke and args.out:
        # Also record smoke-sized speedups so CI smoke runs have a
        # like-for-like section to regression-check against.
        print("smoke-sized reference pass (for CI --check):")
        report["smoke_ops"] = run(True)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    if args.check:
        return check_regression(report, args.check)
    return 0


if __name__ == "__main__":
    sys.exit(main())
