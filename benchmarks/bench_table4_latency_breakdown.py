"""Table 4: merge/update latency breakdown, baseline vs SLAM-Share.

Paper (avg of 10 EuRoC runs): the baseline pays hold-down (5000 ms),
serialization (78 ms), transfer (66 ms), deserialization (391 ms), full
map merging (2339 ms), processing (132 ms), return transfer (6.4 ms)
and map load (19.8 ms) — ~8006 ms total; SLAM-Share pays encoding
(3 ms), two tiny transfers (0.11/0.1 ms) and a 190 ms in-memory merge —
~193 ms, a >=30x reduction.

We reproduce the table by measuring the baseline rounds from the
baseline session (real serialized bytes over the simulated link, with
the calibrated compute components) against SLAM-Share's merge events.
"""

import numpy as np

from repro.metrics import LatencyBreakdown, average_breakdowns, format_table4


def test_table4_breakdown(baseline_session_result, euroc_session_result,
                          benchmark):
    baseline_result, share_result = benchmark.pedantic(
        lambda: (baseline_session_result, euroc_session_result),
        rounds=1, iterations=1,
    )

    hold_down_ms = 5000.0  # the paper's user-specified batching window
    rounds = [
        r
        for state in baseline_result.clients.values()
        for r in state.rounds
    ]
    assert rounds, "baseline produced no sync rounds"
    baseline_rows = [r.breakdown(hold_down_ms) for r in rounds]
    baseline_avg = average_breakdowns(baseline_rows, "Baseline")

    merges = share_result.merges
    assert merges
    share_avg = LatencyBreakdown("SLAM-Share")
    share_avg.set("encoding", 3.0)  # H.264 encode (paper Table 4 row 3)
    share_avg.set("data_transfer_1", 0.11)
    share_avg.set("map_merging", float(np.mean([m.merge_ms for m in merges])))
    share_avg.set("data_transfer_2", 0.1)

    table = format_table4({"Baseline": baseline_avg, "SLAM-Share": share_avg})
    print("\nTable 4 — merge latency breakdown (ms)\n" + table)

    ratio = baseline_avg.total_ms / share_avg.total_ms
    print(f"\nreduction: {ratio:.1f}x (paper: >=30x)")

    # Paper shape assertions.
    assert baseline_avg.get("hold_down") == hold_down_ms
    assert baseline_avg.get("deserialization") > baseline_avg.get("serialization")
    assert baseline_avg.get("map_merging") > share_avg.get("map_merging")
    assert share_avg.total_ms < 250.0
    assert ratio > 25.0


def test_table4_sharedmem_vs_serialize_wall_clock(benchmark):
    """The mechanism behind Table 4, measured in *wall-clock*: inserting
    a map update into the shared-memory store vs serialize+deserialize
    of the same entities (the baseline's path)."""
    import time

    from repro.net import deserialize_map, serialize_map
    from repro.sharedmem import SharedMapStore
    from tests.test_net_serialization_transport import make_map

    update = make_map(n_keyframes=12, n_points_per_kf=40, seed=3)
    store = SharedMapStore(capacity=64 * 1024 * 1024)

    def shared_memory_path():
        store.publish_map(update.keyframes.values(), update.mappoints.values())

    def serialize_path():
        deserialize_map(serialize_map(update))

    t0 = time.perf_counter()
    shared_memory_path()
    shm_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    serialize_path()
    ser_s = time.perf_counter() - t0
    benchmark.pedantic(shared_memory_path, rounds=3, iterations=1)
    print(f"\nshared-memory publish: {shm_s * 1e3:.2f} ms vs "
          f"serialize+deserialize: {ser_s * 1e3:.2f} ms "
          f"({ser_s / shm_s:.1f}x)")
    assert shm_s < ser_s
