"""Adaptive-offloading benchmark: mixed fleets where no static policy wins.

Two legs, matching the PR's acceptance gates:

1. **Mixed fleet** — weak devices on clean links (server placement is
   right for them: ~21 ms round trips vs ~310 ms on-device) share the
   session with strong devices on *flappy* links that oscillate between
   clean and +300 ms of added delay (client placement is right while
   the link is bad: ~60 ms on-device vs ~640 ms round trips).  Each
   static policy is optimal for one half of the fleet and terrible for
   the other; the adaptive controller migrates the strong clients back
   and forth as their links flap.  Gates: adaptive pooled frame p95
   <= best static pooled p95, zero tracking gaps (nothing shed or
   dropped; every captured frame tracked or provably superseded by a
   post-handoff frame whose IMU delta covers its interval), >= 10
   committed handoffs (full; >= 2 smoke) in both directions, every
   handoff carrying its IMU anchor, ATE continuity (< 0.15 m).
2. **Load spike** — admission slots are held mid-run so every arriving
   frame overflows the bounded queue.  Under ``static-server`` those
   frames are discarded (sheds); under ``adaptive`` they degrade to
   on-device tracking and the controller then migrates the clients off
   the congested server.  Gates: adaptive discards nothing and rescues
   >= 1 frame on-device, the same spike makes the static policy shed,
   and a shed/load-reason handoff commits.

Usage::

    PYTHONPATH=src python benchmarks/bench_offload.py               # full run
    PYTHONPATH=src python benchmarks/bench_offload.py --smoke       # CI-sized
    PYTHONPATH=src python benchmarks/bench_offload.py --smoke \
        --check BENCH_PR9.json                                      # gate

All latencies are simulated (SimClock) and the gates compare booleans,
so results are machine-independent: smoke runs on CI compare against
the committed baseline's ``smoke_ops`` section, full runs against
``ops``.  ``--trace-jsonl PATH`` records the adaptive leg's
frame-lifecycle traces (handoff instants included) for CI artifacts.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

import numpy as np

from repro.core import ClientScenario, SlamShareConfig, SlamShareSession
from repro.datasets import make_dataset
from repro.gpu.device import CpuCostModel
from repro.net.tc import PROFILE_DELAY_300MS, PROFILE_IDEAL
from repro.obs import get_tracer

POLICIES = ("static-server", "static-client", "adaptive")

#: Device classes for the mixed fleet.  The weak model is ~2x the
#: default mobile-class silicon (~310 ms/frame on-device); the strong
#: model is near-server-class (~60 ms/frame).
WEAK_CPU = CpuCostModel(pixel_ns=400.0, pair_ns=180.0, feature_match_ns=6000.0)
STRONG_CPU = CpuCostModel(pixel_ns=70.0, pair_ns=40.0, feature_match_ns=1500.0)

BAD_DELAY_S = 0.300


def _fleet(smoke: bool) -> Dict[str, object]:
    """The scenario sweep: clients, link-flap schedules, duration."""
    if smoke:
        return {
            "duration": 14.0,
            "clients": [
                {"trace": "MH04", "cpu": None, "flaps": None},       # weak/clean
                {"trace": "MH05", "cpu": STRONG_CPU,
                 "flaps": [(6.0, 0.0)]},                             # bad -> good
                {"trace": "MH04", "cpu": STRONG_CPU,
                 "flaps": [(7.0, 0.0)]},
            ],
            "min_handoffs": 2,
        }
    return {
        "duration": 36.0,
        "clients": [
            {"trace": "MH04", "cpu": None, "flaps": None},
            {"trace": "MH05", "cpu": None, "flaps": None},
            {"trace": "MH04", "cpu": STRONG_CPU,
             "flaps": [(6.0, 0.0), (12.0, BAD_DELAY_S), (18.0, 0.0),
                       (24.0, BAD_DELAY_S), (30.0, 0.0)]},
            {"trace": "MH05", "cpu": STRONG_CPU,
             "flaps": [(9.0, 0.0), (15.0, BAD_DELAY_S), (21.0, 0.0),
                       (27.0, BAD_DELAY_S), (33.0, 0.0)]},
        ],
        "min_handoffs": 10,
    }


def _run_fleet(policy: str, smoke: bool, seed: int = 7,
               spike: Optional[Dict[str, object]] = None):
    """One session of the mixed fleet under ``policy``."""
    fleet = _fleet(smoke)
    config = SlamShareConfig(camera_fps=10.0, render_video_frames=False)
    config.serving.offload.policy = policy
    scenarios = []
    for i, spec in enumerate(fleet["clients"]):
        # Flapping clients start on the bad link; the weak clients'
        # links are clean throughout.
        shaping = PROFILE_DELAY_300MS if spec["flaps"] else PROFILE_IDEAL
        scenarios.append(ClientScenario(
            client_id=i,
            dataset=make_dataset(spec["trace"], duration=fleet["duration"],
                                 rate=10.0),
            oracle_seed=seed + 2 * i,
            imu_seed=seed + 2 * i + 1,
            shaping=shaping,
            device_cpu=spec["cpu"],
        ))
    session = SlamShareSession(scenarios, config)

    def set_delay(cid: int, delay_s: float) -> None:
        link = session._links[cid]
        link.uplink.delay_s = delay_s
        link.downlink.delay_s = delay_s

    for i, spec in enumerate(fleet["clients"]):
        for t, delay_s in (spec["flaps"] or ()):
            session.clock.schedule_at(
                t, lambda cid=i, d=delay_s: set_delay(cid, d))

    if spike is not None:
        held: Dict[int, int] = {}

        def start_spike() -> None:
            for i in range(len(scenarios)):
                taken = 0
                free = (config.serving.queue_depth
                        - session.server.in_flight(i))
                for _ in range(free):
                    if session.server.try_admit(i) == "ok":
                        taken += 1
                held[i] = taken

        def end_spike() -> None:
            for cid, taken in held.items():
                for _ in range(taken):
                    session.server.release_frame(cid)

        session.clock.schedule_at(spike["start"], start_spike)
        session.clock.schedule_at(spike["end"], end_spike)

    result = session.run()
    return session, result


def _policy_summary(result) -> Dict[str, object]:
    pooled: List[float] = []
    per_client = {}
    for cid, outcome in sorted(result.outcomes.items()):
        pooled.extend(outcome.pose_rtts_ms)
        ate = result.client_ate(cid).rmse
        per_client[str(cid)] = {
            "captured": outcome.frames_captured,
            "processed": outcome.frames_processed,
            "local": outcome.frames_local,
            "degraded": outcome.frames_degraded,
            "superseded": outcome.frames_superseded,
            "shed": outcome.frames_shed,
            "uplink_drops": outcome.uplink_drops,
            "pose_drops": outcome.pose_drops,
            "handoffs": outcome.handoffs,
            "ate_m": round(float(ate), 4),
        }
    committed = result.offload.committed_handoffs()
    return {
        "p50_ms": round(float(np.percentile(pooled, 50)), 2),
        "p95_ms": round(float(np.percentile(pooled, 95)), 2),
        "p99_ms": round(float(np.percentile(pooled, 99)), 2),
        "pose_samples": len(pooled),
        "handoffs": len(committed),
        "handoffs_aborted": sum(1 for h in result.offload.handoffs
                                if h.aborted),
        "handoff_reasons": sorted({h.reason for h in committed}),
        "clients": per_client,
    }


def _zero_gaps(result) -> bool:
    """No frame was discarded; every captured frame is accounted for.

    A superseded frame is not a gap: it was overtaken by a
    post-handoff frame whose anchor-bridged IMU delta covers its
    interval, so the tracked timeline has no hole.
    """
    for outcome in result.outcomes.values():
        if outcome.frames_shed or outcome.uplink_drops or outcome.pose_drops:
            return False
        accounted = (outcome.frames_processed + outcome.frames_superseded
                     + outcome.frames_offline)
        if accounted != outcome.frames_captured:
            return False
    return True


def bench_mixed_fleet(smoke: bool) -> Dict[str, object]:
    """Sweep all three policies over the mixed fleet; adaptive must win."""
    fleet = _fleet(smoke)
    policies: Dict[str, Dict[str, object]] = {}
    results = {}
    for policy in POLICIES:
        _, result = _run_fleet(policy, smoke)
        results[policy] = result
        policies[policy] = _policy_summary(result)
        print(f"  fleet[{policy}]: p95 {policies[policy]['p95_ms']} ms, "
              f"{policies[policy]['handoffs']} handoffs, "
              f"reasons {policies[policy]['handoff_reasons']}")
    adaptive = results["adaptive"]
    adaptive_p95 = policies["adaptive"]["p95_ms"]
    best_static_p95 = min(policies["static-server"]["p95_ms"],
                          policies["static-client"]["p95_ms"])
    committed = adaptive.offload.committed_handoffs()
    directions = {h.dst for h in committed}
    ate_max = max(adaptive.client_ate(cid).rmse
                  for cid in adaptive.outcomes)
    gates = {
        "adaptive_beats_best_static": adaptive_p95 <= best_static_p95,
        "zero_gaps": _zero_gaps(adaptive),
        "handoffs_min": len(committed) >= fleet["min_handoffs"],
        "both_directions": {"client", "server"} <= directions,
        "anchor_preserved": all(h.imu_anchor_ts is not None
                                for h in committed),
        "ate_continuity": ate_max < 0.15,
        "statics_never_migrate": (
            policies["static-server"]["handoffs"] == 0
            and policies["static-client"]["handoffs"] == 0
        ),
    }
    print(f"  fleet: adaptive p95 {adaptive_p95} ms vs best static "
          f"{best_static_p95} ms, {len(committed)} handoffs "
          f"(need >= {fleet['min_handoffs']}), ate_max {ate_max * 100:.2f} cm")
    return {
        "detail": f"{len(fleet['clients'])} clients (weak/clean + "
                  f"strong/flappy links), {fleet['duration']:.0f} s at "
                  "10 fps, three placement policies",
        "adaptive_p95_ms": adaptive_p95,
        "best_static_p95_ms": best_static_p95,
        "handoffs": len(committed),
        "ate_max_m": round(float(ate_max), 4),
        "policies": policies,
        "gates": gates,
    }


def bench_load_spike(smoke: bool) -> Dict[str, object]:
    """Overload the admission queue; adaptive degrades instead of shedding."""
    spike = ({"start": 4.0, "end": 5.2} if smoke
             else {"start": 6.0, "end": 8.0})
    legs = {}
    for policy in ("static-server", "adaptive"):
        _, result = _run_fleet(policy, smoke=True, spike=spike)
        legs[policy] = result
        summary = _policy_summary(result)
        shed = sum(o.frames_shed for o in result.outcomes.values())
        degraded = sum(o.frames_degraded for o in result.outcomes.values())
        print(f"  spike[{policy}]: shed {shed}, degraded {degraded}, "
              f"handoffs {summary['handoffs']}")
    adaptive = legs["adaptive"]
    static = legs["static-server"]
    static_shed = sum(o.frames_shed for o in static.outcomes.values())
    adaptive_shed = sum(o.frames_shed for o in adaptive.outcomes.values())
    degraded = sum(o.frames_degraded for o in adaptive.outcomes.values())
    committed = adaptive.offload.committed_handoffs()
    spike_reasons = {h.reason for h in committed} & {"shed", "load"}
    gates = {
        "static_discards_under_spike": static_shed >= 1,
        "adaptive_zero_discards": adaptive_shed == 0,
        "adaptive_rescues_frames": degraded >= 1,
        "spike_triggers_handoff": bool(spike_reasons),
        "zero_gaps": _zero_gaps(adaptive),
    }
    return {
        "detail": "admission slots held for "
                  f"{spike['end'] - spike['start']:.1f} s mid-run; "
                  "static-server sheds, adaptive degrades to on-device "
                  "tracking and migrates off the congested server",
        "static_shed": static_shed,
        "adaptive_shed": adaptive_shed,
        "adaptive_degraded": degraded,
        "spike_handoff_reasons": sorted(spike_reasons),
        "gates": gates,
    }


def bench_offload(smoke: bool) -> Dict[str, Dict[str, object]]:
    print(f"offload benchmarks ({'smoke' if smoke else 'full'}):")
    return {
        "mixed_fleet": bench_mixed_fleet(smoke),
        "load_spike": bench_load_spike(smoke),
    }


# --------------------------------------------------------------- regression
def check_regression(report: Dict, baseline_path: str) -> int:
    """Fail if any gate fails now, or a baseline-passing gate regressed."""
    with open(baseline_path, "r", encoding="utf-8") as fh:
        baseline = json.load(fh)
    section = "smoke_ops" if report["mode"] == "smoke" else "ops"
    baseline_ops = baseline.get(section) or baseline.get("ops", {})
    failures = []
    for op, entry in report["ops"].items():
        for gate, passed in entry.get("gates", {}).items():
            if not passed:
                failures.append(f"{op}.{gate}: failed")
    for op, entry in baseline_ops.items():
        current = report["ops"].get(op)
        if current is None:
            failures.append(f"{op}: missing from current run")
            continue
        for gate, passed in entry.get("gates", {}).items():
            if passed and not current.get("gates", {}).get(gate, False):
                failures.append(f"{op}.{gate}: passed in baseline, fails now")
    if failures:
        print("OFFLOAD REGRESSION:")
        for line in sorted(set(failures)):
            print(f"  {line}")
        return 1
    n_gates = sum(len(e.get("gates", {})) for e in report["ops"].values())
    print(f"regression check vs {baseline_path} [{section}]: ok "
          f"({n_gates} gates)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small sizes / short runs (CI)")
    parser.add_argument("--out", default=None,
                        help="write the JSON report here (e.g. BENCH_PR9.json)")
    parser.add_argument("--check", default=None, metavar="BASELINE",
                        help="compare gates against a committed baseline; "
                             "exit non-zero on any gate failure")
    parser.add_argument("--trace-jsonl", default=None, metavar="PATH",
                        help="record frame-lifecycle spans (handoff instants "
                             "included) across the runs as JSON lines")
    args = parser.parse_args(argv)

    tracer = get_tracer()
    if args.trace_jsonl:
        tracer.reset()
        tracer.configure(enabled=True)

    report = {
        "schema": 1,
        "mode": "smoke" if args.smoke else "full",
        "generated_by": "benchmarks/bench_offload.py",
        "ops": bench_offload(args.smoke),
    }
    if not args.smoke and args.out:
        # Also record smoke-sized gates so CI smoke runs have a
        # like-for-like section to regression-check against.
        print("smoke-sized reference pass (for CI --check):")
        report["smoke_ops"] = bench_offload(True)
    if args.trace_jsonl:
        n = tracer.export_jsonl(args.trace_jsonl)
        print(f"wrote {n} spans to {args.trace_jsonl}")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    if args.check:
        return check_regression(report, args.check)
    return 0


if __name__ == "__main__":
    sys.exit(main())
