"""Fig. 7: a new client's map snaps into the global map on merge.

Paper: the new client's small map starts misaligned (its own origin);
after `DetectCommonRegion` + 3-D alignment + BA it lands at the correct
place in the global map, and continued exploration extends the global
map.  We regenerate the three panels as numbers: keyframe-position
error vs the ground truth before the merge, after the merge, and after
continued exploration.
"""

import numpy as np

from repro.metrics import absolute_trajectory_error
from repro.slam import MapMerger
from tests.test_slam_merging import build_two_clients


def test_fig7_merge_snaps_client_map(benchmark):
    (ds_a, sys_a), (ds_b, sys_b) = build_two_clients(duration=12.0)

    # Panel (a): before merging, client B's keyframes live in B's private
    # frame — compared in A's/global frame they are far off.
    traj_b_before = sys_b.map.keyframe_trajectory(client_id=1)
    misalignment = absolute_trajectory_error(
        traj_b_before, ds_b.ground_truth, align=False
    ).rmse

    merger = MapMerger(sys_a.map, sys_a.database, ds_a.camera)
    result = benchmark.pedantic(
        lambda: merger.merge_maps(sys_b.map, client_id=1),
        rounds=1, iterations=1,
    )
    assert result.success

    # Panel (b): B's keyframes snapped into the global frame.  We align
    # the *combined* map once (the global gauge) and then read off B's
    # residual under that shared alignment.
    traj_a = sys_a.map.keyframe_trajectory(client_id=0)
    traj_b = sys_a.map.keyframe_trajectory(client_id=1)
    combined = absolute_trajectory_error(traj_a, ds_a.ground_truth)
    gauge = combined.transform
    gt_b = ds_b.ground_truth.resample(traj_b.timestamps).positions
    residual_b = np.linalg.norm(
        gt_b - gauge.apply(traj_b.positions), axis=1
    )
    after = float(np.sqrt((residual_b ** 2).mean()))

    print("\nFig. 7 — new-client map before/after merge (vs ground truth)")
    print(f"  (a) before merge (B in its own frame): {misalignment:8.2f} m")
    print(f"  (b) after merge + BA (global frame)  : {after * 100:8.2f} cm")
    print(f"      correspondences={result.n_correspondences}, "
          f"fused={result.n_fused_points}, "
          f"Sim3 scale={result.transform.scale:.4f}")

    assert misalignment > 1.0     # visibly misplaced before (paper Fig. 7a)
    assert after < 0.10           # snapped to the right place (Fig. 7b)
