"""Ablation A1: shared-memory map store vs serialize/transfer/deserialize.

The mechanism behind Table 4's 30x gap, isolated and measured in wall-
clock time on identical map updates of growing size: SLAM-Share's path
(write packed records into the arena, read them back in place) against
the baseline's path (TLV-serialize, ship, rebuild the object graph).
"""

import time

import pytest

from repro.net import deserialize_map, serialize_map
from repro.sharedmem import SharedMapStore
from tests.test_net_serialization_transport import make_map

SIZES = (2, 8, 24)


@pytest.mark.parametrize("n_keyframes", SIZES)
def test_ablation_sharedmem_publish(n_keyframes, benchmark):
    update = make_map(n_keyframes=n_keyframes, n_points_per_kf=40,
                      seed=n_keyframes)
    store = SharedMapStore(capacity=256 * 1024 * 1024)

    def publish():
        store.publish_map(update.keyframes.values(), update.mappoints.values())

    benchmark(publish)


@pytest.mark.parametrize("n_keyframes", SIZES)
def test_ablation_serialize_roundtrip(n_keyframes, benchmark):
    update = make_map(n_keyframes=n_keyframes, n_points_per_kf=40,
                      seed=n_keyframes)

    def roundtrip():
        return deserialize_map(serialize_map(update))

    benchmark(roundtrip)


def test_ablation_sharedmem_wins_at_every_size(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print("\nAblation A1 — map-update handoff cost (wall-clock)")
    print(f"{'KFs':>5} {'shared-mem (ms)':>17} {'serialize (ms)':>16} "
          f"{'ratio':>7}")
    for n_kf in SIZES:
        update = make_map(n_keyframes=n_kf, n_points_per_kf=40, seed=n_kf)
        store = SharedMapStore(capacity=256 * 1024 * 1024)
        t0 = time.perf_counter()
        store.publish_map(update.keyframes.values(), update.mappoints.values())
        shm = time.perf_counter() - t0
        t0 = time.perf_counter()
        deserialize_map(serialize_map(update))
        ser = time.perf_counter() - t0
        print(f"{n_kf:>5} {shm * 1e3:>17.2f} {ser * 1e3:>16.2f} "
              f"{ser / shm:>7.1f}x")
        assert shm < ser

    # And reading back from the store is cheap (zero-copy views).
    update = make_map(n_keyframes=8, n_points_per_kf=40, seed=8)
    store = SharedMapStore(capacity=256 * 1024 * 1024)
    store.publish_map(update.keyframes.values(), update.mappoints.values())
    t0 = time.perf_counter()
    kfs = list(store.iter_keyframes())
    read_s = time.perf_counter() - t0
    print(f"  read-back of {len(kfs)} keyframes: {read_s * 1e3:.2f} ms")
    assert len(kfs) == 8
