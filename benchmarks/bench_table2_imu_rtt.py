"""Table 2: IMU-compensated accuracy as server RTT grows.

Paper: with the client's IMU bridging the wait for server poses, whole-
map ATE degrades only from 5.91 cm (0 RTT) to 6.58 cm (1000 ms), and a
stressful sharp-turn region from 2.41 cm to 3.13 cm — graceful, not
catastrophic.  We reproduce the sweep by delaying server pose delivery
by a fixed RTT while the client dead-reckons on IMU (Alg. 1).
"""

import numpy as np
import pytest

from repro.datasets import euroc_dataset, kitti_dataset
from repro.geometry import Trajectory, quaternion
from repro.imu import (
    ClientMotionModel,
    ImuBuffer,
    ImuState,
    preintegrate,
    synthesize_imu,
)
from repro.metrics import absolute_trajectory_error

RTTS_MS = (0, 30, 60, 90, 167, 200, 300, 1000)


def _client_rtt_sweep(dataset, rtts_ms, pose_noise_m=0.004, seed=5):
    """Run the client motion model with server poses arriving RTT late.

    Server poses are ground truth + centimeter SLAM noise (the paper's
    server-side tracking error); between arrivals the client relies on
    preintegrated IMU.
    """
    traj = dataset.ground_truth
    rate = dataset.rate
    imu = ImuBuffer(synthesize_imu(traj, rate_hz=200.0, seed=11))
    rng_master = np.random.default_rng(seed)
    results = {}
    for rtt_ms in rtts_ms:
        lag = max(int(round(rtt_ms / 1000.0 * rate)), 0)
        rng = np.random.default_rng(rng_master.integers(1 << 31))
        p0 = traj[0]
        model = ClientMotionModel(
            ImuState(
                quaternion.to_matrix(p0.orientation),
                p0.position,
                traj.velocities()[1],
                p0.timestamp,
            )
        )
        for i in range(1, len(traj)):
            delta = preintegrate(imu, traj[i - 1].timestamp, traj[i].timestamp)
            model.advance(delta)
            ready = i - lag
            if ready >= 1:
                gt_pose = traj[ready].pose_bw()
                noisy = gt_pose.perturb(
                    np.concatenate(
                        [rng.normal(scale=pose_noise_m, size=3),
                         rng.normal(scale=0.001, size=3)]
                    )
                )
                model.receive_slam_pose(ready, noisy)
        est = Trajectory.from_arrays(
            traj.timestamps,
            np.stack([s.position for s in model.states]),
        )
        results[rtt_ms] = est
    return results


@pytest.mark.parametrize("trace", ["KITTI-00", "MH05"])
def test_table2_ate_vs_rtt(trace, benchmark):
    if trace == "KITTI-00":
        ds = kitti_dataset("KITTI-00", duration=20.0, rate=10.0)
        region = (8.0, 14.0)     # a corner of the circuit (sharp turn)
    else:
        ds = euroc_dataset("MH05", duration=20.0, rate=10.0)
        region = (8.0, 14.0)

    estimates = benchmark.pedantic(
        lambda: _client_rtt_sweep(ds, RTTS_MS), rounds=1, iterations=1
    )
    whole = {}
    small = {}
    for rtt_ms, est in estimates.items():
        whole[rtt_ms] = absolute_trajectory_error(est, ds.ground_truth).rmse
        seg = est.slice_time(*region)
        gt_seg = ds.ground_truth.slice_time(*region)
        small[rtt_ms] = absolute_trajectory_error(seg, gt_seg).rmse

    print(f"\nTable 2 — {trace}: IMU-compensated ATE vs RTT")
    print(f"{'RTT (ms)':>10} {'Whole map (cm)':>16} {'Region (cm)':>14}")
    for rtt_ms in RTTS_MS:
        print(f"{rtt_ms:>10} {whole[rtt_ms] * 100:>16.2f} "
              f"{small[rtt_ms] * 100:>14.2f}")

    # Paper shape: monotone-ish, gentle degradation; even 1000 ms RTT
    # costs well under 2x the 0-RTT error and stays centimeter-scale.
    assert whole[1000] < 2.5 * max(whole[0], 0.01)
    assert whole[1000] < 0.12
    assert whole[300] <= whole[1000] + 1e-6
    assert whole[0] <= whole[300] + 0.01
