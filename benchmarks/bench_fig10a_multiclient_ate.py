"""Fig. 10a/b: cumulative global-map ATE as three EuRoC clients merge.

Paper: client A builds the global map; when B (then C) joins, the
pooled ATE spikes (55 cm / 15 cm — fragments in private frames), then
collapses (~1 cm) the moment the merge lands, and stays flat (~6.5 cm)
for the rest of the session.  We print the live series and the merge
events from the shared three-client session.
"""

import numpy as np



def test_fig10a_live_global_ate(euroc_session_result, benchmark):
    result = benchmark.pedantic(
        lambda: euroc_session_result, rounds=1, iterations=1
    )
    series = result.live_global_ate
    merges = sorted(result.merges, key=lambda m: m.session_time)
    assert len(merges) >= 1

    print("\nFig. 10a — live global-map ATE (3 clients, EuRoC-like)")
    merge_times = {round(m.session_time, 1): m.client_id for m in merges}
    for t, v in series:
        marker = ""
        for mt, cid in merge_times.items():
            if abs(t - mt) <= 0.25:
                marker = f"   <= client {cid} merged ({merges[0].merge_ms:.0f} ms)"
        print(f"  t={t:6.2f} s   ATE={v * 100:8.2f} cm{marker}")

    first_merge = merges[0].session_time
    spike = [v for t, v in series if first_merge - 2.0 < t < first_merge]
    settled = [v for t, v in series if t > merges[-1].session_time + 1.0]
    assert spike and settled
    assert max(spike) > 0.10        # the pre-merge spike (paper: 55 cm)
    assert np.mean(settled) < 0.10  # flat and low afterwards (paper: ~6.5 cm)


def test_fig10b_trajectories_close_to_ground_truth(euroc_session_result, benchmark):
    """Fig. 10b: every client's estimated trajectory overlays its ground
    truth after merging."""
    result = benchmark.pedantic(lambda: euroc_session_result, rounds=1,
                                iterations=1)
    print("\nFig. 10b — per-client trajectory accuracy in the global map")
    for cid, outcome in sorted(result.outcomes.items()):
        ate = result.client_ate(cid)
        print(f"  client {cid}: ATE {ate.rmse * 100:6.2f} cm over "
              f"{ate.n_pairs} poses")
        assert ate.rmse < 0.10
    # Top-down overlay, Fig. 10b style: client 1's estimated path over
    # its ground truth, drawn in the ground-truth frame via the ATE
    # alignment transform.
    from repro.metrics import ascii_xy_plot

    outcome = result.outcomes[1]
    ate = result.client_ate(1)
    estimated = result.server.client_trajectory(1).positions
    aligned = ate.transform.apply(estimated) if ate.transform else estimated
    print(ascii_xy_plot({
        "ground truth": outcome.scenario.dataset.ground_truth.positions,
        "estimated (aligned)": aligned,
    }))


def test_fig10a_merge_latency_under_200ms(euroc_session_result, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for merge in euroc_session_result.merges:
        print(f"merge client {merge.client_id}: {merge.merge_ms:.0f} ms "
              f"(fused {merge.n_fused_points} points)")
        assert merge.merge_ms < 200.0
