"""Longevity benchmark: long-lived maps under eviction + compaction.

Three legs, matching the PR's acceptance gates:

1. **Simulated day** — a churn of clients (join/leave) continuously
   maps for a simulated hour against keyframe / map-point budgets.
   Evictions are reconciled into a sharded store (tombstones) and the
   store compacts past its utilization trigger.  Gates: store bytes
   stay in a bounded band (max <= 2x the steady-state median, with
   actual decreases — never monotonic growth) and per-op p95 stays
   flat (last-10-minute window <= 1.5x the first-10-minute window).
2. **Shm compaction under readers** — a writer publishes, tombstones
   and compacts a :class:`ShmShardedMapStore` while reader threads
   continuously parse records with self-validating payloads.  Gates:
   compaction reclaims bytes and zero torn reads.
3. **Snapshot -> restore -> relocalize** — a real session persists its
   global map; a later session restores it and a fresh client
   relocalizes through place recognition.  Gates: the client merges
   into the restored map with ATE < 0.15 m.

Usage::

    PYTHONPATH=src python benchmarks/bench_longevity.py              # full run
    PYTHONPATH=src python benchmarks/bench_longevity.py --smoke      # CI-sized
    PYTHONPATH=src python benchmarks/bench_longevity.py --smoke \
        --check BENCH_PR8.json                                       # gate

The regression gate checks *booleans and ratios* (bounded, flat,
relocalized, reclaimed, zero-torn), not absolute milliseconds, so it is
stable across machines.  Smoke runs compare against the baseline's
``smoke_ops`` section, full runs against ``ops``.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import threading
import time
from typing import Dict, List

import numpy as np

from repro.core import ClientScenario, SlamShareConfig, SlamShareSession
from repro.datasets import make_dataset
from repro.geometry import SE3, so3
from repro.sharedmem import ShardedMapStore, ShmShardedMapStore, load_snapshot
from repro.slam import IdAllocator, SlamMap
from repro.slam.keyframe import KeyFrame
from repro.slam.mappoint import MapPoint
from repro.vision.brief import DESCRIPTOR_BYTES


# ------------------------------------------------------------ simulated day
class _DayClient:
    """One churning mapper: allocates ids, re-observes its recent points."""

    def __init__(self, client_id: int) -> None:
        self.client_id = client_id
        self.kf_alloc = IdAllocator(client_id)
        self.pt_alloc = IdAllocator(client_id)
        self.recent_pids: List[int] = []
        self.last_kf_id: int = -1
        self.n_kfs = 0


def _make_keyframe(client: _DayClient, slam_map: SlamMap, t: float,
                   rng, new_points: int = 12, reobserve: int = 24):
    """One keyframe observing a mix of the client's recent points."""
    base = np.array([0.3 * client.n_kfs, 0.1 * client.client_id, 0.0])
    pose = SE3(so3.exp(np.array([0.0, 0.01 * client.n_kfs, 0.0])), base)
    created = []
    for _ in range(new_points):
        point = MapPoint(
            point_id=client.pt_alloc.allocate(),
            position=base + rng.normal(scale=1.5, size=3) + [0, 0, 6.0],
            descriptor=rng.integers(0, 256, DESCRIPTOR_BYTES, dtype=np.uint8),
        )
        slam_map.add_mappoint(point)
        created.append(point.point_id)
    client.recent_pids = [
        pid for pid in client.recent_pids if pid in slam_map.mappoints
    ][-reobserve:] + created
    observed = client.recent_pids[-(reobserve + new_points):]
    n = len(observed)
    kf = KeyFrame(
        keyframe_id=client.kf_alloc.allocate(),
        timestamp=t,
        pose_cw=pose,
        uv=rng.uniform(0, 320, size=(n, 2)),
        descriptors=rng.integers(0, 256, (n, DESCRIPTOR_BYTES),
                                 dtype=np.uint8),
        depths=rng.uniform(1, 10, size=n),
        point_ids=np.asarray(observed, dtype=np.int64),
        client_id=client.client_id,
    )
    for i, pid in enumerate(observed):
        slam_map.mappoints[pid].add_observation(kf.keyframe_id, i)
    slam_map.add_keyframe(kf)
    client.last_kf_id = kf.keyframe_id
    client.n_kfs += 1
    return kf, [slam_map.mappoints[pid] for pid in created]


def bench_day(smoke: bool, seed: int = 0) -> Dict[str, object]:
    """Continuous mapping with churn against budgets; bounded store."""
    n_ops = 240 if smoke else 3600          # one keyframe-op per sim second
    churn_every = 60 if smoke else 300      # a client leaves / joins
    n_active = 3
    max_kfs, max_pts = (40, 1200) if smoke else (120, 4000)
    rng = np.random.default_rng(seed)
    slam_map = SlamMap()
    # Sized so steady-state occupancy sits above the compaction trigger:
    # the arena-utilization path gets exercised, not just eviction.
    store = ShardedMapStore(n_shards=4, capacity=1024 * 1024)
    compact_utilization = 0.12
    clients = [_DayClient(i) for i in range(n_active)]
    next_client = n_active
    bytes_series: List[int] = []
    op_ms: List[float] = []
    first_bind = None                       # op index where eviction began
    evicted_kfs_total = evicted_pts_total = 0
    reclaimed = 0
    for op in range(n_ops):
        if op and op % churn_every == 0:    # join/leave churn
            clients.pop(0)
            clients.append(_DayClient(next_client))
            next_client += 1
        client = clients[op % n_active]
        start = time.perf_counter()
        kf, new_points = _make_keyframe(client, slam_map, float(op), rng)
        store.publish_map([kf], new_points)
        protect_kfs = [c.last_kf_id for c in clients if c.last_kf_id >= 0]
        protect_pts = set(kf.observed_point_ids())
        slam_map.enforce_budgets(
            max_keyframes=max_kfs, max_mappoints=max_pts,
            protect_keyframes=protect_kfs, protect_points=protect_pts,
        )
        gone_kfs, gone_pts = slam_map.drain_evictions()
        for kf_id in gone_kfs:
            store.remove_keyframe(kf_id)
        for pid in gone_pts:
            store.remove_mappoint(pid)
        reclaimed += store.maybe_compact(compact_utilization)
        op_ms.append((time.perf_counter() - start) * 1e3)
        bytes_series.append(store.stats().arena.allocated)
        if gone_kfs or gone_pts:
            evicted_kfs_total += len(gone_kfs)
            evicted_pts_total += len(gone_pts)
            if first_bind is None:
                first_bind = op

    window = max(n_ops // 6, 10)            # "10 minutes" of the hour
    first_p95 = float(np.percentile(op_ms[:window], 95))
    last_p95 = float(np.percentile(op_ms[-window:], 95))
    p95_ratio = last_p95 / max(first_p95, 1e-9)
    # The 1.5x flatness gate is meaningful over an hour of ops; smoke
    # windows are ~40 samples of sub-millisecond work, where scheduler
    # jitter alone swings the ratio, so smoke only catches gross
    # (unbounded-map) slowdowns.
    flat_limit = 5.0 if smoke else 1.5
    steady = bytes_series[first_bind:] if first_bind is not None else []
    decreases = sum(
        1 for a, b in zip(steady, steady[1:]) if b < a
    )
    median = float(np.median(steady)) if steady else 0.0
    bounded = bool(steady) and max(steady) <= 2.0 * median
    gates = {
        "budget_bound": first_bind is not None,
        "bytes_bounded": bounded,
        "bytes_not_monotonic": decreases > 0,
        "map_within_budget": (slam_map.n_keyframes <= max_kfs
                              and slam_map.n_mappoints <= max_pts),
        "p95_flat": p95_ratio <= flat_limit,
    }
    print(f"  day: {n_ops} ops, evicted {evicted_kfs_total} kfs / "
          f"{evicted_pts_total} points, store {bytes_series[-1]} B "
          f"(peak {max(bytes_series)} B, median steady {median:.0f} B), "
          f"p95 {first_p95:.2f} -> {last_p95:.2f} ms "
          f"(ratio {p95_ratio:.2f}), reclaimed {reclaimed} B, "
          f"decreases {decreases}")
    return {
        "detail": f"{n_ops} keyframe-ops, {n_active} clients, churn every "
                  f"{churn_every}, budgets {max_kfs} kfs / {max_pts} points",
        "ops": n_ops,
        "evicted_keyframes": evicted_kfs_total,
        "evicted_mappoints": evicted_pts_total,
        "store_bytes_final": bytes_series[-1],
        "store_bytes_peak": max(bytes_series),
        "store_bytes_decreases": decreases,
        "compaction_reclaimed_bytes": reclaimed,
        "p95_first_ms": round(first_p95, 3),
        "p95_last_ms": round(last_p95, 3),
        "p95_ratio": round(p95_ratio, 3),
        "gates": gates,
    }


# ------------------------------------------- shm compaction torn-read probe
def _probe_point(pid: int) -> MapPoint:
    """Self-validating payload: every field derived from the id."""
    return MapPoint(
        point_id=pid,
        position=np.array([pid, 2.0 * pid, 3.0 * pid], dtype=np.float64),
        descriptor=np.full(DESCRIPTOR_BYTES, pid % 251, dtype=np.uint8),
    )


def _point_valid(point: MapPoint) -> bool:
    pid = point.point_id
    return (
        np.array_equal(point.position, [pid, 2.0 * pid, 3.0 * pid])
        and np.all(point.descriptor == pid % 251)
    )


def bench_shm_compaction(smoke: bool) -> Dict[str, object]:
    """Compact a live shm store under concurrent readers; count torn reads."""
    rounds = 4 if smoke else 12
    batch = 64 if smoke else 256
    store = ShmShardedMapStore.create(
        n_shards=2, pack_capacity=1024,
        shard_slab_bytes=1 * 1024 * 1024, lock_timeout_s=30.0,
    )
    stop = threading.Event()
    torn = [0]
    reads = [0]
    live_ids: List[int] = []

    def reader() -> None:
        rng = np.random.default_rng(threading.get_ident() % 2**31)
        while not stop.is_set():
            ids = live_ids
            if not ids:
                continue
            pid = int(ids[int(rng.integers(len(ids)))])
            point = store.get_mappoint(pid)
            if point is None:
                continue            # tombstoned between pick and read: fine
            reads[0] += 1
            if not _point_valid(point):
                torn[0] += 1

    threads = [threading.Thread(target=reader, daemon=True)
               for _ in range(3)]
    reclaimed = 0
    try:
        next_pid = 0
        # Seed the store before the readers start so they always have
        # live ids to race against the writer on.
        seedlings = [_probe_point(i) for i in range(batch)]
        next_pid += batch
        store.publish_map([], seedlings)
        live_ids = [p.point_id for p in seedlings]
        for t in threads:
            t.start()
        for _ in range(rounds):
            fresh = [_probe_point(next_pid + i) for i in range(batch)]
            next_pid += batch
            store.publish_map([], fresh)
            live_ids = live_ids + [p.point_id for p in fresh]
            # Tombstone the older half, then compact past the garbage.
            half = len(live_ids) // 2
            for pid in live_ids[:half]:
                store.remove_mappoint(pid)
            live_ids = live_ids[half:]
            reclaimed += store.compact()
            time.sleep(0.005)       # let readers race the fresh epoch
        deadline = time.perf_counter() + 5.0
        while reads[0] < 500 and time.perf_counter() < deadline:
            time.sleep(0.01)
        stop.set()
        for t in threads:
            t.join(timeout=10.0)
        survivors = store.mappoint_ids()
        consistent = sorted(survivors) == sorted(live_ids) and all(
            _point_valid(store.get_mappoint(pid)) for pid in survivors
        )
    finally:
        stop.set()
        store.close()
        store.unlink()
    gates = {
        "reclaimed": reclaimed > 0,
        "zero_torn_reads": torn[0] == 0,
        "read_under_load": reads[0] > 0,
        "post_compaction_consistent": consistent,
    }
    print(f"  shm: {rounds} compaction rounds, reclaimed {reclaimed} B, "
          f"{reads[0]} concurrent reads, {torn[0]} torn, "
          f"consistent={consistent}")
    return {
        "detail": f"{rounds} publish/tombstone/compact rounds of {batch} "
                  "points, 3 reader threads on self-validating payloads",
        "rounds": rounds,
        "reclaimed_bytes": reclaimed,
        "concurrent_reads": reads[0],
        "torn_reads": torn[0],
        "gates": gates,
    }


# --------------------------------------- snapshot -> restore -> relocalize
def bench_snapshot_reloc(smoke: bool, seed: int = 7) -> Dict[str, object]:
    """Persist a session's map; a later client relocalizes into it."""
    save_s, restore_s = (8.0, 6.0) if smoke else (12.0, 10.0)
    traces = ["MH04"] if smoke else ["MH04", "MH05"]
    tmp = tempfile.mkdtemp(prefix="bench-longevity-")
    snap_path = f"{tmp}/map.snap"
    try:
        config = SlamShareConfig(camera_fps=10.0, render_video_frames=False)
        config.serving.snapshot_path = snap_path
        scenarios = [
            ClientScenario(
                client_id=i,
                dataset=make_dataset(t, duration=save_s, rate=10.0),
                start_time=i * 3.0,
                oracle_seed=seed + 2 * i, imu_seed=seed + 2 * i + 1,
            )
            for i, t in enumerate(traces)
        ]
        SlamShareSession(scenarios, config, ate_sample_interval=1.0).run()
        info = load_snapshot(snap_path).info

        config2 = SlamShareConfig(camera_fps=10.0, render_video_frames=False)
        config2.serving.restore_path = snap_path
        fresh_id = len(traces) + 3
        scenario = ClientScenario(
            client_id=fresh_id,
            dataset=make_dataset(traces[0], duration=restore_s, rate=10.0),
            start_time=0.0, oracle_seed=seed + 11, imu_seed=seed + 12,
        )
        result = SlamShareSession([scenario], config2,
                                  ate_sample_interval=1.0).run()
        merges = [m for m in result.merges if m.client_id == fresh_id]
        ate = result.client_ate(fresh_id).rmse
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    gates = {
        "snapshot_nonempty": info.n_keyframes > 0,
        "relocalized": bool(merges),
        "ate_under_15cm": ate < 0.15,
    }
    reloc_t = merges[0].session_time if merges else None
    print(f"  reloc: snapshot {info.n_keyframes} kfs / {info.n_mappoints} "
          f"points ({info.bytes_written} B), relocalized="
          f"{bool(merges)}{f' at t={reloc_t:.1f}s' if merges else ''}, "
          f"ATE {ate * 100:.2f} cm")
    return {
        "detail": f"{len(traces)}-client {save_s:.0f} s session persisted, "
                  f"fresh client replays {restore_s:.0f} s against the "
                  "restored map",
        "snapshot_keyframes": info.n_keyframes,
        "snapshot_mappoints": info.n_mappoints,
        "snapshot_bytes": info.bytes_written,
        "relocalized_at_s": reloc_t,
        "ate_m": round(float(ate), 4),
        "gates": gates,
    }


def bench_longevity(smoke: bool) -> Dict[str, Dict[str, object]]:
    print(f"longevity benchmarks ({'smoke' if smoke else 'full'}):")
    return {
        "day": bench_day(smoke),
        "shm_compaction": bench_shm_compaction(smoke),
        "snapshot_reloc": bench_snapshot_reloc(smoke),
    }


# --------------------------------------------------------------- regression
def check_regression(report: Dict, baseline_path: str) -> int:
    """Fail if any gate fails now, or a baseline-passing gate regressed.

    Gates are machine-independent booleans (bounded bytes, flat p95,
    relocalized, zero torn reads), so smoke runs on slow CI runners
    compare cleanly against a baseline generated elsewhere.
    """
    with open(baseline_path, "r", encoding="utf-8") as fh:
        baseline = json.load(fh)
    section = "smoke_ops" if report["mode"] == "smoke" else "ops"
    baseline_ops = baseline.get(section) or baseline.get("ops", {})
    failures = []
    for op, entry in report["ops"].items():
        for gate, passed in entry.get("gates", {}).items():
            if not passed:
                failures.append(f"{op}.{gate}: failed")
    for op, entry in baseline_ops.items():
        current = report["ops"].get(op)
        if current is None:
            failures.append(f"{op}: missing from current run")
            continue
        for gate, passed in entry.get("gates", {}).items():
            if passed and not current.get("gates", {}).get(gate, False):
                failures.append(f"{op}.{gate}: passed in baseline, fails now")
    if failures:
        print("LONGEVITY REGRESSION:")
        for line in sorted(set(failures)):
            print(f"  {line}")
        return 1
    n_gates = sum(len(e.get("gates", {})) for e in report["ops"].values())
    print(f"regression check vs {baseline_path} [{section}]: ok "
          f"({n_gates} gates)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small sizes / short runs (CI)")
    parser.add_argument("--out", default=None,
                        help="write the JSON report here (e.g. BENCH_PR8.json)")
    parser.add_argument("--check", default=None, metavar="BASELINE",
                        help="compare gates against a committed baseline; "
                             "exit non-zero on any gate failure")
    args = parser.parse_args(argv)

    report = {
        "schema": 1,
        "mode": "smoke" if args.smoke else "full",
        "generated_by": "benchmarks/bench_longevity.py",
        "ops": bench_longevity(args.smoke),
    }
    if not args.smoke and args.out:
        # Also record smoke-sized gates so CI smoke runs have a
        # like-for-like section to regression-check against.
        print("smoke-sized reference pass (for CI --check):")
        report["smoke_ops"] = bench_longevity(True)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    if args.check:
        return check_regression(report, args.check)
    return 0


if __name__ == "__main__":
    sys.exit(main())
