"""Table 1: map size versus keyframe count (EuRoC MH04).

Paper: 10 KFs / 825 points / 2.74 MB growing to 210 KFs / 8415 points /
38.81 MB — roughly linear growth of serialized map size with keyframes.
We regenerate the table from our MH04-like run and check the shape:
monotone growth, roughly constant MB-per-keyframe slope.
"""

import pytest

from repro.datasets import euroc_dataset
from repro.net import map_payload_size, serialize_map
from repro.slam import SlamMap
from tests.test_slam_system import run_system

KF_STEPS = (10, 20, 30, 40, 50)


def _prefix_map(full_map: SlamMap, n_keyframes: int) -> SlamMap:
    """The map as it looked after its first ``n_keyframes`` keyframes."""
    prefix = SlamMap(map_id=full_map.map_id)
    kf_ids = sorted(full_map.keyframes)[:n_keyframes]
    kept = set()
    for kf_id in kf_ids:
        kf = full_map.keyframes[kf_id]
        for pid in kf.observed_point_ids():
            pid = int(pid)
            if pid not in kept and pid in full_map.mappoints:
                prefix.add_mappoint(full_map.mappoints[pid])
                kept.add(pid)
        prefix.add_keyframe(kf)
    return prefix


@pytest.fixture(scope="module")
def mh04_map():
    ds = euroc_dataset("MH04", duration=45.0, rate=10.0)
    system, _lost = run_system(ds)
    return system.map


def test_table1_map_size_vs_keyframes(mh04_map, benchmark):
    rows = []

    def build_table():
        rows.clear()
        for n_kf in KF_STEPS:
            if n_kf > mh04_map.n_keyframes:
                break
            prefix = _prefix_map(mh04_map, n_kf)
            rows.append(
                (n_kf, prefix.n_mappoints, map_payload_size(prefix) / 1e6)
            )
        full = map_payload_size(mh04_map) / 1e6
        rows.append((mh04_map.n_keyframes, mh04_map.n_mappoints, full))
        return rows

    benchmark.pedantic(build_table, rounds=1, iterations=1)

    print("\nTable 1 — EuRoC MH04 map size (reproduced)")
    print(f"{'Keyframes':>10} {'Mappoints':>10} {'Map size (MB)':>14}")
    for n_kf, n_pts, mb in rows:
        print(f"{n_kf:>10} {n_pts:>10} {mb:>14.2f}")

    sizes = [mb for _, _, mb in rows]
    counts = [k for k, _, _ in rows]
    # Shape checks: monotone growth, near-linear slope (paper: ~0.2 MB/KF).
    assert all(b > a for a, b in zip(sizes, sizes[1:]))
    slopes = [
        (sizes[i + 1] - sizes[i]) / (counts[i + 1] - counts[i])
        for i in range(len(sizes) - 1)
    ]
    assert max(slopes) < 4 * min(slopes)


def test_table1_serialization_cost_scales(mh04_map, benchmark):
    """Serializing the full map is what the baseline pays per sync."""
    payload = benchmark(serialize_map, mh04_map)
    assert len(payload) > 100_000
