"""Fig. 5: CPU tracking-latency breakdown across datasets.

Paper: on the CPU, ORB extraction is >50% of tracking time and search-
local-points ~30%, with totals >34 ms — too slow for 30 FPS.  We replay
real tracked workloads from four traces (mono and stereo) through the
calibrated CPU cost model and print the per-stage breakdown.
"""

import numpy as np
import pytest

from repro.datasets import make_dataset
from repro.gpu import TrackingLatencyModel
from tests.test_slam_system import run_system

TRACES = ("KITTI-00", "KITTI-05", "MH04", "V202")


def _mean_workloads(name, duration=6.0):
    ds = make_dataset(name, duration=duration, rate=10.0)
    system, _ = run_system(ds)
    # Re-run a handful of frames to collect workloads.
    oracle = ds.make_oracle(stereo=True, seed=31)
    workloads = []
    from repro.imu import ImuBuffer, preintegrate, synthesize_imu

    imu = ImuBuffer(synthesize_imu(ds.ground_truth, rate_hz=200.0, seed=33))
    prev = None
    for ts, obs in ds.frames(oracle, limit=30):
        delta = preintegrate(imu, prev, ts) if prev is not None else None
        result = system.process_frame(ts + 1000.0, obs, imu_delta=delta)
        workloads.append(result.tracking.workload)
        prev = ts
    return workloads


@pytest.mark.parametrize("trace", TRACES)
def test_fig5_cpu_breakdown(trace, benchmark):
    workloads = _mean_workloads(trace)
    model = TrackingLatencyModel()

    def evaluate():
        return [
            model.breakdown(w, stereo=False, device="cpu") for w in workloads
        ]

    breakdowns = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    mean = {
        key: float(np.mean([b.as_dict()[key] for b in breakdowns]))
        for key in ("orb_extraction", "orb_matching", "pose_prediction",
                    "search_local_points", "pnp", "total")
    }
    print(f"\nFig. 5 — {trace} CPU tracking breakdown (simulated ms)")
    for key, value in mean.items():
        share = 100.0 * value / mean["total"] if key != "total" else 100.0
        print(f"  {key:<20} {value:>7.2f} ms  ({share:>4.1f}%)")

    # The paper's shape: extraction dominates (>50%), search ~30%,
    # total over the 33 ms real-time budget.
    assert mean["orb_extraction"] / mean["total"] > 0.45
    assert 0.10 < mean["search_local_points"] / mean["total"] < 0.45
    assert mean["total"] > 33.0
