"""Ablation A3: GSlice-style spatial GPU sharing vs temporal sharing.

Paper §4.2.1: SLAM-Share uses spatio-temporal GPU sharing so several
clients' kernels run concurrently on SM partitions rather than FIFO-
queueing behind each other.  We replay synchronized multi-client kernel
arrivals through both schedulers and compare latency distributions, and
check end-to-end tracking latency still meets 30 FPS with 4 clients.
"""

import numpy as np
import pytest

from repro.gpu import GpuScheduler, TrackingLatencyModel
from repro.net import SimClock
from repro.slam.tracking import TrackingWorkload

FRAME_PERIOD = 1 / 30.0
KERNEL_S = 0.006           # a victim client's per-frame GPU work at 100%
BURST_KERNEL_S = 0.020     # the aggressor's oversized kernels
N_CLIENTS = 4
N_FRAMES = 60


def _replay(mode: str) -> GpuScheduler:
    """Client 0 bursts oversized kernels; clients 1-3 run normal frames.

    This is the scenario GSlice targets: under temporal sharing the
    burst head-of-line-blocks everyone; under spatial sharing each
    client's SM partition isolates the victims.
    """
    clock = SimClock()
    scheduler = GpuScheduler(clock, mode=mode, n_clients=N_CLIENTS)
    for frame in range(N_FRAMES):
        clock.schedule(
            frame * FRAME_PERIOD,
            lambda: scheduler.submit(0, BURST_KERNEL_S),
        )
        for client in range(1, N_CLIENTS):
            clock.schedule(
                frame * FRAME_PERIOD + client * 1e-4,
                lambda c=client: scheduler.submit(c, KERNEL_S),
            )
    clock.run()
    return scheduler


def test_ablation_gpu_sharing_modes(benchmark):
    spatial, temporal = benchmark.pedantic(
        lambda: (_replay("spatial"), _replay("temporal")),
        rounds=1, iterations=1,
    )
    print("\nAblation A3 — victim-client kernel latency under a bursty peer")
    results = {}
    for name, sched in (("spatial (GSlice)", spatial), ("temporal", temporal)):
        victims = [r for r in sched.records if r.client_id != 0]
        lat = [r.latency * 1e3 for r in victims]
        queue = [r.queue_delay * 1e3 for r in victims]
        results[name] = np.percentile(lat, 99)
        print(f"  {name:<18} mean {np.mean(lat):6.2f} ms  "
              f"p99 {np.percentile(lat, 99):6.2f} ms  "
              f"queue {np.mean(queue):5.2f} ms")
    # Spatial sharing isolates the victims from the burst.
    assert results["spatial (GSlice)"] < results["temporal"]
    assert all(r.queue_delay == 0 for r in spatial.records)


def test_ablation_sharing_keeps_tracking_realtime(benchmark):
    """With 4 clients on SM partitions, per-frame tracking must still fit
    in the 33 ms budget (the paper's 'tens of users' scaling argument
    at session scale)."""
    model = TrackingLatencyModel()
    workload = TrackingWorkload(
        image_pixels=752 * 480, n_features=300, n_local_points=600,
        candidate_pairs=100_000, pnp_iterations=6, n_matches=250,
    )

    def sweep():
        return {
            n: model.breakdown(
                workload, stereo=True, device="gpu", gpu_share=1.0 / n
            ).total
            for n in (1, 2, 4)
        }

    totals = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nAblation A3b — tracking latency vs concurrent clients (stereo)")
    for n, total in totals.items():
        print(f"  {n} client(s): {total:6.2f} ms per frame")
    # Below GPU saturation, concurrency is free — that is the whole
    # point of spatial sharing (and of the paper's tens-of-users claim).
    assert totals[4] == pytest.approx(totals[1], rel=0.01)
    assert totals[4] < 33.0
