"""Ablation A5: IMU pose priors vs constant-velocity tracking.

Paper §4.2.2 argues the client's IMU makes tracking resilient; our
reproduction found the effect is even more fundamental.  With a pure
constant-velocity motion model, visual pose jitter feeds back through
the prior into the *data association* (features are matched around the
predicted projections), and the bias compounds — at low frame rates the
tracker diverges within a few seconds.  Gyro-driven prediction is
exogenous to the visual estimate and breaks the loop.

This bench runs the same single-user trace with both priors and
reports lost frames and ATE.
"""

import numpy as np

from repro.datasets import euroc_dataset
from repro.imu import GRAVITY_W, ImuBuffer, preintegrate, synthesize_imu
from repro.metrics import absolute_trajectory_error
from repro.slam import SlamConfig, SlamSystem


def _run(with_imu: bool, duration=20.0, rate=10.0):
    ds = euroc_dataset("MH04", duration=duration, rate=rate)
    system = SlamSystem(
        ds.camera,
        SlamConfig(relocalize_on_loss=False),
        gravity=ds.pose_cw(0).rotation @ GRAVITY_W,
    )
    oracle = ds.make_oracle(stereo=True)
    imu = ImuBuffer(synthesize_imu(ds.ground_truth, rate_hz=200.0))
    prev = None
    lost = 0
    for ts, obs in ds.frames(oracle):
        delta = None
        if with_imu and prev is not None:
            delta = preintegrate(imu, prev, ts)
        result = system.process_frame(ts, obs, imu_delta=delta)
        if not result.tracking.success:
            lost += 1
        prev = ts
    ate = absolute_trajectory_error(
        system.estimated_trajectory(), ds.ground_truth
    )
    return lost, ate.rmse, ds.n_frames


def test_ablation_imu_prior_vs_constant_velocity(benchmark):
    (imu_lost, imu_ate, n), (cv_lost, cv_ate, _) = benchmark.pedantic(
        lambda: (_run(True), _run(False)), rounds=1, iterations=1
    )
    print("\nAblation A5 — tracking prior source (MH04-like, 10 FPS, 20 s)")
    print(f"  IMU prior        : {imu_lost}/{n} frames lost, "
          f"ATE {imu_ate * 100:.2f} cm")
    cv_ate_txt = f"{cv_ate * 100:.1f} cm" if np.isfinite(cv_ate) else "n/a"
    print(f"  constant velocity: {cv_lost}/{n} frames lost, ATE {cv_ate_txt}")

    # The IMU prior keeps tracking alive; the constant-velocity model
    # loses a large fraction of frames at this frame rate.
    assert imu_lost <= 2
    assert imu_ate < 0.05
    assert cv_lost > imu_lost
