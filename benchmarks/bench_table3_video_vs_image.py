"""Table 3: video uplink vs per-image transfer.

Paper: image transfer needs 81 (mono) / 131 (stereo) Mbit/s at 30 FPS
while the H.264 stream needs 1.1 / 1.93 Mbit/s; encode < 3 ms, both
decode ~1 ms; ATE is unchanged by the codec.  We measure our real
codecs on rendered frames; the absolute gap is smaller (our entropy
stage is DEFLATE, not CABAC+DCT — see EXPERIMENTS.md) but the ordering
and ATE-neutrality reproduce.
"""

import numpy as np
import pytest

from repro.datasets import euroc_dataset, kitti_dataset
from repro.video import H264LikeCodec, PngLikeCodec, encode_stream, psnr
from repro.vision import OrbExtractor, OrbExtractorConfig, render_frame

N_FRAMES = 25


def _frames(ds, n=N_FRAMES, stride=1):
    return [
        render_frame(
            ds.world.positions, ds.world.ids, ds.camera, ds.pose_cw(i * stride),
            rng=np.random.default_rng(100 + i),
        ).pixels
        for i in range(n)
    ]


@pytest.mark.parametrize(
    "trace,stereo_factor", [("KITTI-00", 2), ("MH05", 1)]
)
def test_table3_video_vs_image(trace, stereo_factor, benchmark):
    ds = (
        kitti_dataset("KITTI-00", duration=5.0, rate=10.0)
        if trace.startswith("KITTI")
        else euroc_dataset("MH05", duration=5.0, rate=10.0)
    )
    frames = _frames(ds)

    def both_streams():
        video = encode_stream(
            H264LikeCodec(gop=30, quantization=8), frames, decode=True
        )
        images = encode_stream(PngLikeCodec(), frames, decode=True)
        return video, images

    video, images = benchmark.pedantic(both_streams, rounds=1, iterations=1)
    v_mbps = stereo_factor * video.bitrate_bps(30) / 1e6
    i_mbps = stereo_factor * images.bitrate_bps(30) / 1e6
    mode = "stereo" if stereo_factor == 2 else "mono"
    print(f"\nTable 3 — {trace} ({mode}), 30 FPS equivalent")
    print(f"  image transfer : {i_mbps:8.2f} Mbit/s  "
          f"(enc n/a, dec {images.mean_decode_ms:.2f} ms)")
    print(f"  SLAM-Share     : {v_mbps:8.2f} Mbit/s  "
          f"(enc {video.mean_encode_ms:.2f} ms, dec {video.mean_decode_ms:.2f} ms)")
    print(f"  bandwidth ratio: {i_mbps / v_mbps:.1f}x")

    assert v_mbps < i_mbps / 3          # video ≪ images (paper: ~70x)
    assert video.mean_encode_ms < 80.0  # pure-Python; paper: <3 ms native


def test_table3_codec_preserves_features(benchmark):
    """The 'same ATE' row: features extracted from decoded video frames
    match those from pristine frames to sub-pixel accuracy."""
    ds = euroc_dataset("MH05", duration=3.0, rate=10.0)
    frames = _frames(ds, n=8)
    codec = H264LikeCodec(gop=30, quantization=8)
    extractor = OrbExtractor(OrbExtractorConfig(n_features=120, n_levels=2))

    def roundtrip_features():
        pairs = []
        for frame in frames:
            decoded = codec.decode(codec.encode(frame))
            from repro.vision import Image

            pristine = extractor.extract(Image(frame))
            lossy = extractor.extract(Image(decoded))
            pairs.append((frame, decoded, pristine, lossy))
        return pairs

    pairs = benchmark.pedantic(roundtrip_features, rounds=1, iterations=1)
    displacements = []
    quality = []
    for frame, decoded, pristine, lossy in pairs:
        quality.append(psnr(frame, decoded))
        if len(pristine) == 0 or len(lossy) == 0:
            continue
        # Nearest-keypoint displacement between the two feature sets.
        for kp_uv in pristine.uv:
            d = np.min(np.linalg.norm(lossy.uv - kp_uv, axis=1))
            displacements.append(d)
    match_rate = float(np.mean([d < 1.0 for d in displacements]))
    print(f"\nTable 3 ATE row — decoded-frame feature stability: "
          f"PSNR {np.mean(quality):.1f} dB, {100 * match_rate:.1f}% of "
          f"keypoints within 1 px")
    assert np.mean(quality) > 35.0
    assert match_rate > 0.85
