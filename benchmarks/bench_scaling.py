"""Scale-out serving load generator (sharding + batching + admission).

Sweeps 4 -> 64 simulated clients through the serving layer twice per
point — once with the unsharded/unbatched/unadmitted **baseline**
configuration and once with the **tuned** scale-out configuration
(16-shard map store, 8 ms cross-client micro-batching window, bounded
per-client admission queues) — and reports frame p50/p95/p99, shed
rate and map-lock wait statistics for each.  A separate thread storm
hammers the *real* ``SharedMapStore`` vs ``ShardedMapStore`` with
concurrent readers and publishers to measure wall-clock store-op
latency and per-lock wait totals.

The client/GPU pipeline runs on the deterministic :class:`SimClock`
(identical numbers on every machine), so its percentiles are safe to
gate in CI; the thread-storm section is wall-clock and reported for
information only.

Usage::

    PYTHONPATH=src python benchmarks/bench_scaling.py                 # full sweep
    PYTHONPATH=src python benchmarks/bench_scaling.py --smoke         # CI-sized
    PYTHONPATH=src python benchmarks/bench_scaling.py --smoke \
        --check BENCH_PR4.json                                        # scaling gate
    PYTHONPATH=src python benchmarks/bench_scaling.py --procs 4       # real
        # multi-process serving: N workers tracking against one OS
        # shared-memory segment, thread-mode (GIL-bound) baseline vs
        # process-mode, with aggregate-throughput speedup

The ``--check`` gate fails when, at 32 clients, the tuned frame p95 is
not at least 2x better than the baseline's, or the tuned shed rate
reaches 10%.  With ``--procs`` it additionally checks that thread and
process runs agree exactly on frames/matches/store contents (shared-map
correctness) and — on hosts with >= 4 cores — that 4+ processes beat
the GIL-bound thread baseline by >= 2x aggregate throughput.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time
from collections import defaultdict
from dataclasses import dataclass
from functools import partial
from typing import Dict, List, Optional

import numpy as np

from repro.core.orchestrator import ServingOrchestrator, ServingWorkloadConfig
from repro.geometry import SE3
from repro.gpu.scheduler import BatchingConfig, GpuScheduler
from repro.net.simclock import SimClock
from repro.sharedmem import ShardedMapStore, SharedMapStore, spatial_shard
from repro.slam.keyframe import KeyFrame
from repro.slam.mappoint import MapPoint

CLIENT_FPS = 30.0
GPU_MS = 0.7                # per-frame tracking kernel at full rate
OVERHEAD_MS = 1.2           # fixed per-dispatch overhead
WINDOW_MS = 8.0             # tuned coalescing window
MAX_BATCH = 24
P99_BUDGET_MS = 9.0         # latency budget for the solo-dispatch fallback
QUEUE_DEPTH = 8             # tuned per-client admission queue
KF_EVERY = 10               # every K-th frame publishes a keyframe
PUBLISH_HOLD_MS = 2.0       # write-lock hold of one keyframe publish
MERGE_EVERY = 400           # per-client frames between Alg.-2 merges
MERGE_HOLD_MS = 15.0        # multi-shard write-lock hold of a merge
MERGE_SPAN = 3              # shards a merge's weld region straddles
N_SHARDS = 16
REGION_M = 8.0
GATE_CLIENTS = 32
GATE_P95_RATIO = 2.0
GATE_SHED_RATE = 0.10
# Multi-process serving gate: N real processes tracking against one OS
# shared-memory segment must beat the same N workers as threads of one
# process (GIL-bound) by this factor.  The ratio is hardware-dependent,
# so it is enforced only on hosts with enough cores to show the
# parallelism (the acceptance criterion targets a >= 4-core host);
# correctness and liveness are checked everywhere.
GATE_PROC_SPEEDUP = 2.0
GATE_PROC_MIN_CORES = 4


@dataclass
class ServeProfile:
    name: str
    n_shards: int
    batching: Optional[BatchingConfig]
    queue_depth: Optional[int]          # None: unbounded (no admission)


def baseline_profile() -> ServeProfile:
    """Unsharded map, solo dispatches (overhead per frame), no admission."""
    return ServeProfile(
        name="baseline",
        n_shards=1,
        batching=BatchingConfig(window_s=0.0,
                                dispatch_overhead_s=OVERHEAD_MS * 1e-3),
        queue_depth=None,
    )


def tuned_profile() -> ServeProfile:
    return ServeProfile(
        name="tuned",
        n_shards=N_SHARDS,
        batching=BatchingConfig(
            window_s=WINDOW_MS * 1e-3,
            max_batch=MAX_BATCH,
            dispatch_overhead_s=OVERHEAD_MS * 1e-3,
            # Just under window + overhead + kernel: on an idle GPU the
            # budget falls back to solo dispatch (light load never pays
            # the window), while a backlogged GPU batches regardless.
            p99_budget_s=P99_BUDGET_MS * 1e-3,
        ),
        queue_depth=QUEUE_DEPTH,
    )


def _pcts(samples: List[float]) -> Dict[str, float]:
    if not samples:
        return {"count": 0, "p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0}
    arr = np.asarray(samples)
    return {
        "count": len(samples),
        "p50_ms": round(float(np.percentile(arr, 50)), 3),
        "p95_ms": round(float(np.percentile(arr, 95)), 3),
        "p99_ms": round(float(np.percentile(arr, 99)), 3),
    }


def run_serving_sim(n_clients: int, profile: ServeProfile,
                    duration_s: float) -> Dict[str, object]:
    """Play one configuration's client load on the simulated clock.

    Models, per frame: a local-map read against the client's region
    shard (waits while a publish holds that shard's write lock), the
    tracking kernel on the shared GPU (batched or solo dispatch), and
    the admission decision.  Every K-th frame additionally publishes a
    keyframe (single-shard write hold); periodic merges take an
    ordered multi-shard write hold spanning ``MERGE_SPAN`` shards.
    """
    clock = SimClock()
    sched = GpuScheduler(clock, mode="temporal", batching=profile.batching)
    shard_busy = [0.0] * profile.n_shards
    latencies: List[float] = []
    read_waits: List[float] = []
    write_waits: List[float] = []
    in_flight: Dict[int, int] = defaultdict(int)
    counters = {"frames": 0, "shed": 0}
    # Each client roams its own spatial region; its reads and publishes
    # land on the shard that region hashes to.
    client_shard = [
        spatial_shard((7.3 * c + 0.5, (3.1 * c) % 29.0, 1.0), REGION_M,
                      profile.n_shards)
        for c in range(n_clients)
    ]
    period = 1.0 / CLIENT_FPS

    def frame_event(c: int, i: int) -> None:
        counters["frames"] += 1
        t = clock.now
        if (profile.queue_depth is not None
                and in_flight[c] >= profile.queue_depth):
            counters["shed"] += 1
            return
        in_flight[c] += 1
        shard = client_shard[c]
        # Local-map read: blocked while a publish/merge holds the shard.
        wait = max(0.0, shard_busy[shard] - t)
        read_waits.append(wait * 1e3)
        # Deterministic per-frame size jitter, no RNG.
        gpu_s = (GPU_MS + 0.02 * ((i * 7 + c * 3) % 5)) * 1e-3

        def done() -> None:
            in_flight[c] -= 1
            latencies.append((clock.now - t) * 1e3)

        def submit() -> None:
            sched.submit(c, gpu_s, on_done=done)

        if wait > 0:
            clock.schedule(wait, submit)
        else:
            submit()
        if i % KF_EVERY == KF_EVERY - 1:
            start = max(shard_busy[shard], t)
            write_waits.append((start - t) * 1e3)
            shard_busy[shard] = start + PUBLISH_HOLD_MS * 1e-3
        if i % MERGE_EVERY == MERGE_EVERY - 1:
            span = sorted({(shard + k) % profile.n_shards
                           for k in range(MERGE_SPAN)})
            start = max([t] + [shard_busy[s] for s in span])
            write_waits.append((start - t) * 1e3)
            for s in span:
                shard_busy[s] = start + MERGE_HOLD_MS * 1e-3

    n_frames = int(duration_s * CLIENT_FPS)
    for c in range(n_clients):
        offset = (c / n_clients) * period
        for i in range(n_frames):
            clock.schedule_at(offset + i * period, partial(frame_event, c, i))
    clock.run()
    shed_rate = (counters["shed"] / counters["frames"]
                 if counters["frames"] else 0.0)
    return {
        "frames": counters["frames"],
        "shed": counters["shed"],
        "shed_rate": round(shed_rate, 4),
        "frame": _pcts(latencies),
        "lock_wait_read": _pcts(read_waits),
        "lock_wait_write": _pcts(write_waits),
        "batches": sched.batches_dispatched,
        "solo_dispatches": sched.solo_dispatches,
        "mean_batch_size": round(sched.mean_batch_size, 2),
    }


def serving_sweep(client_counts: List[int],
                  duration_s: float) -> Dict[str, object]:
    out: Dict[str, object] = {}
    print(f"serving sweep ({duration_s:.0f}s sim per point, "
          f"{CLIENT_FPS:.0f} FPS per client):")
    for n in client_counts:
        base = run_serving_sim(n, baseline_profile(), duration_s)
        tuned = run_serving_sim(n, tuned_profile(), duration_s)
        ratio = (base["frame"]["p95_ms"] / tuned["frame"]["p95_ms"]
                 if tuned["frame"]["p95_ms"] > 0 else float("inf"))
        out[str(n)] = {
            "baseline": base,
            "tuned": tuned,
            "p95_ratio": round(ratio, 2),
        }
        print(f"  {n:>3} clients  baseline p95 "
              f"{base['frame']['p95_ms']:>10.2f} ms   tuned p95 "
              f"{tuned['frame']['p95_ms']:>8.2f} ms   ratio "
              f"{ratio:>8.1f}x   shed {tuned['shed_rate'] * 100:5.1f}%   "
              f"batch {tuned['mean_batch_size']:.1f}")
    return out


# --------------------------------------------------------------- thread storm
def _make_entities(n_keyframes: int, n_features: int = 24, spread: float = 80.0):
    """Synthetic keyframes + map points spread across spatial regions."""
    rng = np.random.default_rng(42)
    kfs, points = [], []
    next_point = 0
    for k in range(n_keyframes):
        center = rng.uniform(-spread, spread, 3)
        pose = SE3(np.eye(3), -center)      # camera center == `center`
        point_ids = np.arange(next_point, next_point + n_features,
                              dtype=np.int64)
        descriptors = rng.integers(0, 256, (n_features, 32), dtype=np.uint8)
        kfs.append(KeyFrame(
            keyframe_id=k,
            timestamp=float(k),
            pose_cw=pose,
            uv=rng.uniform(0, 640, (n_features, 2)),
            descriptors=descriptors,
            depths=rng.uniform(1, 10, n_features),
            point_ids=point_ids,
            bow_vector={int(w): float(rng.random())
                        for w in rng.integers(0, 512, 6)},
        ))
        for i, pid in enumerate(point_ids):
            points.append(MapPoint(
                point_id=int(pid),
                position=center + rng.normal(0, 1.5, 3),
                descriptor=descriptors[i],
                observations={k: i},
            ))
        next_point += n_features
    return kfs, points


def _store_locks(store):
    if isinstance(store, ShardedMapStore):
        return [shard.lock for shard in store.shards]
    return [store.lock]


def run_store_storm(store, kfs, points, seconds: float, n_writers: int,
                    n_readers: int) -> Dict[str, object]:
    """Concurrent real-thread publish/read storm against one store."""
    store.publish_map(kfs, points)
    stop = threading.Event()
    read_samples: List[List[float]] = [[] for _ in range(n_readers)]
    write_samples: List[List[float]] = [[] for _ in range(n_writers)]

    def writer(w: int) -> None:
        rng = np.random.default_rng(100 + w)
        my = write_samples[w]
        while not stop.is_set():
            kf = kfs[int(rng.integers(len(kfs)))]
            pts = [points[int(p)] for p in kf.point_ids[:6]]
            t0 = time.perf_counter_ns()
            store.publish_map([kf], pts)
            my.append((time.perf_counter_ns() - t0) / 1e3)

    def reader(r: int) -> None:
        rng = np.random.default_rng(200 + r)
        my = read_samples[r]
        while not stop.is_set():
            t0 = time.perf_counter_ns()
            store.get_keyframe(int(rng.integers(len(kfs))))
            my.append((time.perf_counter_ns() - t0) / 1e3)

    threads = ([threading.Thread(target=writer, args=(w,))
                for w in range(n_writers)]
               + [threading.Thread(target=reader, args=(r,))
                  for r in range(n_readers)])
    for t in threads:
        t.start()
    time.sleep(seconds)
    stop.set()
    for t in threads:
        t.join(timeout=10)
    locks = _store_locks(store)
    reads = [s for chunk in read_samples for s in chunk]
    writes = [s for chunk in write_samples for s in chunk]

    def _us_pcts(samples):
        if not samples:
            return {"count": 0}
        arr = np.asarray(samples)
        return {
            "count": len(samples),
            "p50_us": round(float(np.percentile(arr, 50)), 2),
            "p95_us": round(float(np.percentile(arr, 95)), 2),
            "p99_us": round(float(np.percentile(arr, 99)), 2),
        }

    return {
        "read_op": _us_pcts(reads),
        "write_op": _us_pcts(writes),
        "read_ops_per_s": round(len(reads) / seconds),
        "write_ops_per_s": round(len(writes) / seconds),
        "lock_read_wait_ms": round(
            sum(lk.read_wait_ns for lk in locks) / 1e6, 2),
        "lock_write_wait_ms": round(
            sum(lk.write_wait_ns for lk in locks) / 1e6, 2),
    }


def storm_section(smoke: bool) -> Dict[str, object]:
    n_kf = 60 if smoke else 200
    seconds = 0.4 if smoke else 2.0
    n_writers = 2 if smoke else 4
    n_readers = 6 if smoke else 12
    print(f"store thread storm ({n_writers} writers / {n_readers} readers, "
          f"{seconds:.1f}s each):")
    results = {}
    for label, store in (
        ("unsharded", SharedMapStore(capacity=64 * 1024 * 1024)),
        ("sharded", ShardedMapStore(n_shards=N_SHARDS,
                                    capacity=64 * 1024 * 1024,
                                    region_size=REGION_M)),
    ):
        kfs, points = _make_entities(n_kf)
        results[label] = run_store_storm(store, kfs, points, seconds,
                                         n_writers, n_readers)
        r = results[label]
        print(f"  {label:<10} read p95 {r['read_op'].get('p95_us', 0):>9.1f} us"
              f"   write p95 {r['write_op'].get('p95_us', 0):>9.1f} us"
              f"   read wait {r['lock_read_wait_ms']:>8.1f} ms total")
    un, sh = results["unsharded"], results["sharded"]
    if sh["read_op"].get("p95_us"):
        results["read_p95_ratio"] = round(
            un["read_op"]["p95_us"] / sh["read_op"]["p95_us"], 2)
    return results


# ------------------------------------------------------- multi-process serving
def _proc_workload(smoke: bool) -> ServingWorkloadConfig:
    if smoke:
        return ServingWorkloadConfig(
            n_points=1200, n_frames=40, features_per_frame=96,
            reloc_candidates=120, pack_capacity=8192,
            shard_slab_bytes=1024 * 1024, publish_every=8, merge_every=20,
        )
    return ServingWorkloadConfig()


def proc_section(n_procs: int, smoke: bool) -> Dict[str, object]:
    """Threaded (GIL-bound) vs multi-process tracking on one shm segment.

    Both runs execute the *same* per-worker workload — real Hamming
    matching and projection search against the packed shared map — so
    the only variable is whether the N workers are threads of one
    interpreter or N processes attached to the named segment.
    """
    cfg = _proc_workload(smoke)
    cores = os.cpu_count() or 1
    print(f"multi-process serving ({n_procs} workers, "
          f"{cfg.n_frames} frames/worker, {cores} cores):")
    out: Dict[str, object] = {"n_procs": n_procs, "cores": cores,
                              "frames_per_worker": cfg.n_frames}
    for mode in ("thread", "process"):
        rep = ServingOrchestrator(n_procs, cfg, mode=mode).run()
        out[mode] = rep.to_dict()
        print(f"  {mode:<8} {rep.frames} frames in {rep.wall_s:6.2f}s  "
              f"{rep.throughput_fps:8.1f} fps aggregate  "
              f"{rep.matches} matches  {rep.publishes} publishes")
    t_fps = out["thread"]["throughput_fps"]
    p_fps = out["process"]["throughput_fps"]
    out["speedup"] = round(p_fps / t_fps, 2) if t_fps > 0 else 0.0
    out["consistent"] = (
        out["thread"]["frames"] == out["process"]["frames"]
        == n_procs * cfg.n_frames
        and out["thread"]["matches"] == out["process"]["matches"]
        and out["thread"]["store"] == out["process"]["store"]
    )
    print(f"  speedup {out['speedup']:.2f}x (process vs GIL-bound threads)"
          f"   consistent={out['consistent']}")
    return out


def check_proc_gates(report: Dict) -> List[str]:
    """Liveness/correctness everywhere; speedup on capable hosts only."""
    section = report.get("procs")
    if section is None:
        return []
    failures = []
    if not section.get("consistent"):
        failures.append(
            "thread/process runs disagree on frames, matches, or final "
            "store contents — shared-map corruption or lost work")
    for mode in ("thread", "process"):
        rep = section.get(mode, {})
        if rep.get("frames", 0) <= 0:
            failures.append(f"{mode} serving run completed no frames")
        if rep.get("matches", 0) <= 0:
            failures.append(f"{mode} serving run produced no matches")
    n_procs, cores = section.get("n_procs", 0), section.get("cores", 0)
    if n_procs >= GATE_PROC_MIN_CORES and cores >= GATE_PROC_MIN_CORES:
        if section.get("speedup", 0.0) < GATE_PROC_SPEEDUP:
            failures.append(
                f"{n_procs}-process speedup {section.get('speedup')}x < "
                f"required {GATE_PROC_SPEEDUP}x on a {cores}-core host")
    else:
        print(f"  (proc speedup gate skipped: {n_procs} procs / "
              f"{cores} cores, needs >= {GATE_PROC_MIN_CORES} of each)")
    return failures


# -------------------------------------------------------------------- gating
def check_gates(report: Dict, baseline_path: str) -> int:
    """Fail when scale-out regresses past the acceptance thresholds."""
    with open(baseline_path, "r", encoding="utf-8") as fh:
        baseline = json.load(fh)
    point = report["serving"].get(str(GATE_CLIENTS))
    failures = []
    if point is None:
        failures.append(f"no {GATE_CLIENTS}-client sweep point in this run")
    else:
        if point["p95_ratio"] < GATE_P95_RATIO:
            failures.append(
                f"{GATE_CLIENTS}-client frame p95 ratio "
                f"{point['p95_ratio']:.2f}x < required {GATE_P95_RATIO:.1f}x")
        shed = point["tuned"]["shed_rate"]
        if shed >= GATE_SHED_RATE:
            failures.append(
                f"{GATE_CLIENTS}-client tuned shed rate {shed:.1%} >= "
                f"{GATE_SHED_RATE:.0%}")
        section = ("smoke_serving" if report["mode"] == "smoke"
                   else "serving")
        base_serving = baseline.get(section) or baseline.get("serving", {})
        base_point = base_serving.get(str(GATE_CLIENTS))
        if base_point and point["p95_ratio"] < base_point["p95_ratio"] / 2.0:
            print(f"  warning: p95 ratio {point['p95_ratio']:.1f}x is less "
                  f"than half the committed baseline's "
                  f"{base_point['p95_ratio']:.1f}x")
    failures.extend(check_proc_gates(report))
    if failures:
        print("SCALING REGRESSION:")
        for line in failures:
            print(f"  {line}")
        return 1
    print(f"scaling gate vs {baseline_path}: ok "
          f"(ratio >= {GATE_P95_RATIO:.1f}x, shed < {GATE_SHED_RATE:.0%} "
          f"at {GATE_CLIENTS} clients)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small sweep / short storm (CI)")
    parser.add_argument("--skip-storm", action="store_true",
                        help="simulated sweep only (skip thread storm)")
    parser.add_argument("--procs", type=int, default=None, metavar="N",
                        help="also run N-worker multi-process serving on one "
                             "OS shared-memory segment (thread vs process)")
    parser.add_argument("--out", default=None,
                        help="write the JSON report here (e.g. BENCH_PR4.json)")
    parser.add_argument("--check", default=None, metavar="BASELINE",
                        help="enforce the scale-out acceptance gates against "
                             "a committed baseline; exit non-zero on failure")
    args = parser.parse_args(argv)

    counts = [4, GATE_CLIENTS] if args.smoke else [4, 8, 16, GATE_CLIENTS, 64]
    duration = 6.0 if args.smoke else 16.0
    report = {
        "schema": 1,
        "mode": "smoke" if args.smoke else "full",
        "generated_by": "benchmarks/bench_scaling.py",
        "params": {
            "fps": CLIENT_FPS, "gpu_ms": GPU_MS, "overhead_ms": OVERHEAD_MS,
            "window_ms": WINDOW_MS, "max_batch": MAX_BATCH,
            "p99_budget_ms": P99_BUDGET_MS,
            "queue_depth": QUEUE_DEPTH, "n_shards": N_SHARDS,
            "duration_s": duration,
        },
        "serving": serving_sweep(counts, duration),
        "gate": {"clients": GATE_CLIENTS, "p95_ratio_min": GATE_P95_RATIO,
                 "shed_rate_max": GATE_SHED_RATE},
    }
    if not args.smoke and args.out:
        # Record smoke-sized numbers too, so CI smoke runs have a
        # like-for-like section for drift comparison.
        print("smoke-sized reference pass (for CI --check):")
        report["smoke_serving"] = serving_sweep([4, GATE_CLIENTS], 6.0)
    if not args.skip_storm:
        report["storm"] = storm_section(args.smoke)
    if args.procs:
        report["procs"] = proc_section(args.procs, args.smoke)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    if args.check:
        return check_gates(report, args.check)
    return 0


if __name__ == "__main__":
    sys.exit(main())
