"""Fig. 8: ORB-SLAM3 (CPU) vs SLAM-Share (GPU) tracking latency.

Paper: the GPU cuts extraction by >2x and search-local-points by
25-50%, reducing total tracking latency ~40% (mono) and >50% (stereo),
landing under the 33 ms real-time budget.  We replay real workloads
from KITTI-00 and EuRoC-V202 (mono and stereo) through both device
models.
"""

import numpy as np
import pytest

from repro.gpu import TrackingLatencyModel

from .bench_fig5_tracking_breakdown import _mean_workloads

CASES = [
    ("KITTI-00", False),
    ("KITTI-00", True),
    ("V202", False),
    ("V202", True),
]


@pytest.mark.parametrize("trace,stereo", CASES)
def test_fig8_gpu_vs_cpu(trace, stereo, benchmark):
    workloads = _mean_workloads(trace)
    model = TrackingLatencyModel()

    def evaluate():
        cpu = [model.breakdown(w, stereo=stereo, device="cpu") for w in workloads]
        gpu = [model.breakdown(w, stereo=stereo, device="gpu") for w in workloads]
        return cpu, gpu

    cpu, gpu = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    cpu_total = float(np.mean([b.total for b in cpu]))
    gpu_total = float(np.mean([b.total for b in gpu]))
    cpu_ext = float(np.mean([b.orb_extraction for b in cpu]))
    gpu_ext = float(np.mean([b.orb_extraction for b in gpu]))
    cpu_search = float(np.mean([b.search_local_points for b in cpu]))
    gpu_search = float(np.mean([b.search_local_points for b in gpu]))
    reduction = 1 - gpu_total / cpu_total

    mode = "stereo" if stereo else "mono"
    print(f"\nFig. 8 — {trace} ({mode}): OS3-CPU vs S-Sh-GPU (simulated ms)")
    print(f"  extraction   {cpu_ext:7.2f} -> {gpu_ext:7.2f}")
    print(f"  search local {cpu_search:7.2f} -> {gpu_search:7.2f}")
    print(f"  TOTAL        {cpu_total:7.2f} -> {gpu_total:7.2f} "
          f"({100 * reduction:.0f}% reduction)")

    # Paper shape: >2x extraction cut; 25%+ search cut; ~40% (mono) /
    # >50% (stereo) total reduction; GPU total real-time.
    assert gpu_ext < cpu_ext / 2
    assert gpu_search < cpu_search * 0.75
    assert reduction > (0.50 if stereo else 0.35)
    assert gpu_total < 33.0
