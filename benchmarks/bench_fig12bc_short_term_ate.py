"""Fig. 12b/c: short-term ATE — SLAM-Share vs baseline under shaping.

Paper: with 300 ms added delay the baseline's short-term (trailing 5 s)
ATE fluctuates up to ~12 cm while SLAM-Share stays under ~4 cm; under
bandwidth caps the baseline degrades further (38% of its map updates
arrive late at 9.4 Mbit/s) while SLAM-Share (needing ~1-2 Mbit/s)
doesn't care.
"""

import numpy as np
import pytest

from repro.core import BaselineConfig, BaselineSession, SlamShareSession
from repro.metrics import short_term_ate_series
from repro.net import PROFILE_BW_9_4, PROFILE_BW_18_7, PROFILE_DELAY_300MS

from .conftest import euroc_scenarios, share_config


def _short_term(trajectory, ground_truth, t_last):
    # Evaluation starts after the VI-initialization warmup (the client
    # dead-reckons from unknown velocity until its first server fix).
    eval_times = np.arange(8.0, t_last, 1.0)
    return short_term_ate_series(
        trajectory.slice_time(2.0, 1e9), ground_truth, eval_times, window=5.0
    )


def _run_pair(profile):
    share = SlamShareSession(
        euroc_scenarios(duration_a=16.0, duration_b=12.0),
        share_config(shaping=profile),
    ).run()
    baseline = BaselineSession(
        euroc_scenarios(duration_a=16.0, duration_b=12.0),
        share_config(shaping=profile),
        BaselineConfig(hold_down_frames=50, hold_down_s=5.0),
    ).run()
    return share, baseline


@pytest.mark.parametrize(
    "profile", [PROFILE_DELAY_300MS, PROFILE_BW_18_7, PROFILE_BW_9_4],
    ids=lambda p: p.name,
)
def test_fig12bc_short_term_ate(profile, benchmark):
    share, baseline = benchmark.pedantic(
        lambda: _run_pair(profile), rounds=1, iterations=1
    )
    # User B's view in both systems.
    share_traj = share.outcomes[1].display_trajectory()
    gt = share.outcomes[1].scenario.dataset.ground_truth
    share_series = _short_term(share_traj, gt, 12.0)

    base_state = baseline.clients[1]
    from repro.geometry import Trajectory

    base_traj = Trajectory(list(base_state.global_display))
    base_series = _short_term(base_traj, gt, 12.0)

    print(f"\nFig. 12b/c — short-term ATE, {profile.name}")
    print(f"{'t (s)':>6} {'SLAM-Share (cm)':>17} {'Baseline (cm)':>15}")
    for (t, sv), (_, bv) in zip(share_series, base_series):
        sv_txt = f"{sv * 100:.2f}" if np.isfinite(sv) else "-"
        bv_txt = f"{bv * 100:.2f}" if np.isfinite(bv) else "-"
        print(f"{t:>6.1f} {sv_txt:>17} {bv_txt:>15}")

    share_vals = [v for _, v in share_series if np.isfinite(v)]
    base_vals = [v for _, v in base_series if np.isfinite(v)]
    # SLAM-Share stays low throughout (paper: < 4 cm).
    assert max(share_vals) < 0.06
    # The baseline's worst short-term error exceeds SLAM-Share's.
    assert max(base_vals) > max(share_vals)


def test_fig12c_baseline_misses_updates_at_low_bandwidth(benchmark):
    """Paper: at 9.4 Mbit/s the baseline misses 38% of its updates."""
    def run_two():
        out = {}
        for profile in (PROFILE_BW_18_7, PROFILE_BW_9_4):
            result = BaselineSession(
                euroc_scenarios(duration_a=16.0, duration_b=12.0),
                share_config(shaping=profile),
                BaselineConfig(hold_down_frames=35, hold_down_s=3.5),
            ).run()
            rounds = [r for st in result.clients.values() for st_r in [st.rounds]
                      for r in st_r]
            late = [r for r in rounds if r.missed]
            out[profile.name] = (len(late), len(rounds),
                                 np.mean([r.transfer1_ms for r in rounds]))
        return out

    stats = benchmark.pedantic(run_two, rounds=1, iterations=1)
    print("\nFig. 12c — baseline update delivery under bandwidth caps")
    for name, (late, total, mean_tx) in stats.items():
        print(f"  {name:<14} late {late}/{total} rounds, "
              f"mean upload {mean_tx:.0f} ms")
    # Halving bandwidth lengthens uploads.
    tx_18, tx_9 = (stats[p.name][2] for p in (PROFILE_BW_18_7, PROFILE_BW_9_4))
    assert tx_9 > 1.7 * tx_18
