"""Wall-clock perf harness for the tracking/matching hot path.

Times the real (not simulated) cost of the kernels the paper
parallelizes — all-pairs Hamming, search-local-points, FAST NMS,
descriptor matching — each against its naive reference formulation,
plus an end-to-end multi-client session, and writes a JSON baseline
(``BENCH_PR2.json``) so later PRs have a perf trajectory to compare
against.

Usage::

    PYTHONPATH=src python benchmarks/bench_wallclock.py               # full run
    PYTHONPATH=src python benchmarks/bench_wallclock.py --smoke       # CI-sized
    PYTHONPATH=src python benchmarks/bench_wallclock.py --smoke \
        --check BENCH_PR2.json                                        # regression gate
    PYTHONPATH=src python benchmarks/bench_wallclock.py --procs 4 \
        --skip-e2e                                                    # GIL-free
        # multi-process serving vs the same workers as threads

The regression gate compares *speedups* (fast vs naive, measured in
the same process) rather than absolute milliseconds, so it is stable
across machines: it fails when any kernel's measured speedup drops
below half of the committed baseline's.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Callable, Dict, List

import numpy as np

from repro.obs import get_metrics
from repro.vision.brief import (
    hamming_distance_matrix,
    hamming_distance_matrix_lut,
)
from repro.vision.fast import (
    _collect_keypoints,
    _collect_keypoints_reference,
    detect_fast_vectorized,
)
from repro.vision.matching import (
    FrameGrid,
    Match,
    match_descriptors,
    search_by_projection_dense,
    search_by_projection_vectorized,
)


def _match_descriptors_naive(query, train, max_distance=64, ratio=0.8,
                             cross_check=True):
    """The pre-vectorization per-row loop, kept as the naive baseline."""
    if len(query) == 0 or len(train) == 0:
        return []
    distances = hamming_distance_matrix_lut(query, train)
    best = distances.argmin(axis=1)
    best_dist = distances[np.arange(len(query)), best]
    matches = []
    reverse_best = distances.argmin(axis=0) if cross_check else None
    for qi in range(len(query)):
        ti = int(best[qi])
        dist = int(best_dist[qi])
        if dist > max_distance:
            continue
        if len(train) > 1:
            row = distances[qi].copy()
            row[ti] = np.iinfo(row.dtype).max
            second = int(row.min())
            if second > 0 and dist > ratio * second:
                continue
        if cross_check and int(reverse_best[ti]) != qi:
            continue
        matches.append(Match(qi, ti, dist))
    return matches


def _time_ms(fn: Callable[[], object], repeats: int) -> List[float]:
    fn()  # warmup
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append((time.perf_counter() - start) * 1e3)
    return samples


def _stats(samples: List[float]) -> Dict[str, float]:
    arr = np.asarray(samples)
    return {
        "p50_ms": round(float(np.percentile(arr, 50)), 4),
        "p95_ms": round(float(np.percentile(arr, 95)), 4),
    }


def _op_entry(name: str, naive: Callable[[], object],
              fast: Callable[[], object], repeats: int,
              detail: str) -> Dict[str, object]:
    naive_samples = _time_ms(naive, repeats)
    fast_samples = _time_ms(fast, repeats)
    naive_stats = _stats(naive_samples)
    fast_stats = _stats(fast_samples)
    speedup = naive_stats["p50_ms"] / max(fast_stats["p50_ms"], 1e-9)
    entry = {
        "detail": detail,
        "naive": naive_stats,
        "fast": fast_stats,
        "speedup": round(speedup, 2),
    }
    print(f"  {name:<28} naive p50 {naive_stats['p50_ms']:>9.3f} ms   "
          f"fast p50 {fast_stats['p50_ms']:>9.3f} ms   {speedup:>7.1f}x")
    return entry


def bench_kernels(smoke: bool) -> Dict[str, Dict[str, object]]:
    repeats = 3 if smoke else 15
    rng = np.random.default_rng(7)
    ops: Dict[str, Dict[str, object]] = {}
    print("kernel microbenchmarks (wall-clock):")

    # --- all-pairs Hamming at the acceptance-criteria scale ----------
    m, n = (120, 240) if smoke else (500, 1000)
    desc_a = rng.integers(0, 256, (m, 32), dtype=np.uint8)
    desc_b = rng.integers(0, 256, (n, 32), dtype=np.uint8)
    ops["hamming_distance_matrix"] = _op_entry(
        "hamming_distance_matrix",
        lambda: hamming_distance_matrix_lut(desc_a, desc_b),
        lambda: hamming_distance_matrix(desc_a, desc_b),
        repeats,
        f"{m}x{n} packed 256-bit descriptors, LUT tensor vs u64 popcount",
    )

    # --- search-by-projection at tracking scale ----------------------
    n_pts, n_feats = (150, 80) if smoke else (600, 250)
    proj_uv = np.column_stack(
        [rng.uniform(0, 752, n_pts), rng.uniform(0, 480, n_pts)]
    )
    frame_uv = (
        proj_uv[rng.choice(n_pts, n_feats, replace=False)]
        + rng.normal(0, 3.0, (n_feats, 2))
    )
    point_desc = rng.integers(0, 256, (n_pts, 32), dtype=np.uint8)
    frame_desc = rng.integers(0, 256, (n_feats, 32), dtype=np.uint8)

    def run_dense():
        return search_by_projection_dense(
            proj_uv, point_desc, frame_uv, frame_desc,
            radius=10.0, max_distance=300,
        )

    def run_grid():
        grid = FrameGrid(frame_uv)  # built fresh: honest per-frame cost
        return search_by_projection_vectorized(
            proj_uv, point_desc, frame_uv, frame_desc,
            radius=10.0, max_distance=300, grid=grid,
        )

    assert (
        [(x.query_idx, x.train_idx, x.distance) for x in run_dense()]
        == [(x.query_idx, x.train_idx, x.distance) for x in run_grid()]
    ), "grid search diverged from dense reference"
    ops["search_by_projection"] = _op_entry(
        "search_by_projection",
        run_dense,
        run_grid,
        repeats,
        f"{n_pts} local points x {n_feats} features, r=10px, "
        "dense matrices vs frame-grid pruning",
    )

    # --- FAST NMS ----------------------------------------------------
    h, w = (120, 160) if smoke else (480, 640)
    scores = rng.integers(0, 40, (h, w)).astype(np.float32)
    scores[scores < 38] = 0.0  # ~5% corner density, like a real response map
    ops["fast_nms"] = _op_entry(
        "fast_nms",
        lambda: _collect_keypoints_reference(scores, True),
        lambda: _collect_keypoints(scores, True),
        repeats,
        f"{h}x{w} score map, 8-shift loop vs single-pass shifted-max",
    )

    # --- brute-force matching with ratio test ------------------------
    q_n, t_n = (80, 80) if smoke else (400, 400)
    query = rng.integers(0, 256, (q_n, 32), dtype=np.uint8)
    train = np.array(
        [np.where(rng.random(32) < 0.1, rng.integers(0, 256, 32), d)
         for d in query],
        dtype=np.uint8,
    )[rng.permutation(t_n)]
    assert (
        [(x.query_idx, x.train_idx, x.distance)
         for x in _match_descriptors_naive(query, train)]
        == [(x.query_idx, x.train_idx, x.distance)
            for x in match_descriptors(query, train)]
    ), "vectorized match_descriptors diverged from reference"
    ops["match_descriptors"] = _op_entry(
        "match_descriptors",
        lambda: _match_descriptors_naive(query, train),
        lambda: match_descriptors(query, train),
        repeats,
        f"{q_n}x{t_n} descriptors, per-row python loop vs partition",
    )

    # --- full FAST detection (exercises the new NMS in context) ------
    img = rng.integers(0, 256, ((96, 128) if smoke else (240, 320)),
                       dtype=np.uint8)
    fast_samples = _time_ms(lambda: detect_fast_vectorized(img), repeats)
    ops["detect_fast_vectorized"] = {
        "detail": f"{img.shape[0]}x{img.shape[1]} random image, end-to-end",
        "fast": _stats(fast_samples),
    }
    print(f"  {'detect_fast_vectorized':<28} "
          f"p50 {ops['detect_fast_vectorized']['fast']['p50_ms']:>9.3f} ms")
    return ops


def bench_end_to_end(smoke: bool, trace_jsonl: str = None,
                     metrics_out: str = None) -> Dict[str, object]:
    """Wall-clock per-frame cost of a 4-client SLAM-Share session.

    With ``trace_jsonl``, frame-lifecycle tracing is enabled: every
    admitted frame must come out as a single causally-linked span tree
    (client capture → transport → admission → GPU batch → shard lock →
    pose return) — the run fails otherwise — and the spans are written
    to the given JSONL path (feed it to ``repro.cli report``).
    """
    from repro.core import ClientScenario, SlamShareSession
    from repro.datasets import euroc_dataset
    from repro.obs import get_tracer

    duration = 4.0 if smoke else 12.0
    rate = 10.0
    scenarios = [
        ClientScenario(0, euroc_dataset("MH04", duration=duration, rate=rate)),
        ClientScenario(1, euroc_dataset("MH05", duration=duration, rate=rate),
                       start_time=1.0, oracle_seed=9, imu_seed=13),
        ClientScenario(2, euroc_dataset("MH04", duration=duration, rate=rate),
                       start_time=2.0, oracle_seed=21, imu_seed=23),
        ClientScenario(3, euroc_dataset("V202", duration=duration, rate=rate),
                       start_time=3.0, oracle_seed=33, imu_seed=37),
    ]
    metrics = get_metrics()
    tracer = get_tracer()
    was_enabled = metrics.enabled
    trace_was_enabled = tracer.enabled
    metrics.configure(True)
    metrics.reset()
    if trace_jsonl:
        tracer.reset()
        tracer.configure(enabled=True)
    wall_start = time.perf_counter()
    session = SlamShareSession(scenarios)
    result = session.run()
    total_s = time.perf_counter() - wall_start
    hist = metrics.histogram("server.wall_ms")
    frame_stats = {
        "count": hist.count,
        "p50_ms": round(hist.p50, 3),
        "p95_ms": round(hist.p95, 3),
        "mean_ms": round(hist.mean, 3),
    }
    if metrics_out:
        metrics.export_json(metrics_out)
        print(f"  wrote metrics snapshot to {metrics_out}")
    metrics.configure(was_enabled)
    frames = sum(o.frames_processed for o in result.outcomes.values())
    entry = {
        "detail": f"4 clients, {duration:.0f}s EuRoC traces @ {rate:.0f} FPS",
        "n_clients": 4,
        "frames": frames,
        "session_wall_s": round(total_s, 2),
        "server_frame": frame_stats,
    }
    if trace_jsonl:
        from repro.obs.frames import FrameLedger

        n_spans = tracer.export_jsonl(trace_jsonl)
        ledger = FrameLedger.from_tracer(tracer)
        complete = ledger.complete_frames()
        linked = [f for f in complete if f.linked]
        tracer.configure(trace_was_enabled)
        entry["trace"] = {
            "path": trace_jsonl,
            "spans": n_spans,
            "frames_traced": len(ledger),
            "frames_complete": len(complete),
            "frames_linked": len(linked),
        }
        print(f"  traced {len(ledger)} frames ({n_spans} spans) -> "
              f"{trace_jsonl}; {len(linked)}/{len(complete)} complete "
              f"frames causally linked")
        if len(linked) != len(complete) or len(complete) != frames:
            raise AssertionError(
                f"frame tracing incomplete: {frames} processed frames, "
                f"{len(complete)} complete traces, {len(linked)} linked"
            )
    print("end-to-end 4-client session:")
    print(f"  frames {frames}, session wall {total_s:.1f}s, "
          f"server frame p50 {frame_stats['p50_ms']:.2f} ms "
          f"p95 {frame_stats['p95_ms']:.2f} ms")
    return entry


def bench_procs(n_procs: int, smoke: bool) -> Dict[str, object]:
    """Wall-clock multi-process serving: N workers on one shm segment.

    The same real tracking workload (projection search + Hamming
    matching against the packed shared map) runs once with N threads of
    this interpreter and once with N attached OS processes; the spread
    between the two aggregate throughputs is what the GIL costs.
    """
    from repro.core.orchestrator import (
        ServingOrchestrator,
        ServingWorkloadConfig,
    )

    if smoke:
        cfg = ServingWorkloadConfig(
            n_points=1200, n_frames=40, features_per_frame=96,
            reloc_candidates=120, pack_capacity=8192,
            shard_slab_bytes=1024 * 1024, publish_every=8, merge_every=20,
        )
    else:
        cfg = ServingWorkloadConfig()
    print(f"multi-process serving ({n_procs} workers, "
          f"{cfg.n_frames} frames each):")
    out: Dict[str, object] = {
        "detail": f"{n_procs} workers x {cfg.n_frames} frames, "
                  "one OS shared-memory segment",
        "n_procs": n_procs,
    }
    for mode in ("thread", "process"):
        rep = ServingOrchestrator(n_procs, cfg, mode=mode).run()
        out[mode] = {
            "frames": rep.frames,
            "wall_s": round(rep.wall_s, 3),
            "throughput_fps": round(rep.throughput_fps, 2),
            "matches": rep.matches,
        }
        print(f"  {mode:<8} {rep.frames} frames in {rep.wall_s:6.2f}s  "
              f"{rep.throughput_fps:8.1f} fps aggregate")
    t_fps = out["thread"]["throughput_fps"]
    out["speedup"] = (round(out["process"]["throughput_fps"] / t_fps, 2)
                      if t_fps > 0 else 0.0)
    print(f"  speedup {out['speedup']:.2f}x (process vs GIL-bound threads)")
    return out


def check_regression(report: Dict, baseline_path: str) -> int:
    """Fail (non-zero) if any kernel speedup halved vs the baseline.

    Speedups shrink with problem size, so smoke runs compare against the
    baseline's ``smoke_ops`` section, full runs against ``ops``.
    """
    with open(baseline_path, "r", encoding="utf-8") as fh:
        baseline = json.load(fh)
    section = "smoke_ops" if report["mode"] == "smoke" else "ops"
    baseline_ops = baseline.get(section) or baseline.get("ops", {})
    failures = []
    for op, entry in baseline_ops.items():
        base_speedup = entry.get("speedup")
        if base_speedup is None:
            continue
        current = report["ops"].get(op, {}).get("speedup")
        if current is None:
            failures.append(f"{op}: missing from current run")
            continue
        if current < base_speedup / 2.0:
            failures.append(
                f"{op}: speedup {current:.1f}x < half of baseline "
                f"{base_speedup:.1f}x"
            )
    if failures:
        print("PERF REGRESSION:")
        for line in failures:
            print(f"  {line}")
        return 1
    print(f"regression check vs {baseline_path} [{section}]: ok "
          f"({len(baseline_ops)} ops)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small sizes / few repeats (CI)")
    parser.add_argument("--skip-e2e", action="store_true",
                        help="kernel microbenchmarks only")
    parser.add_argument("--out", default=None,
                        help="write the JSON report here (e.g. BENCH_PR2.json)")
    parser.add_argument("--check", default=None, metavar="BASELINE",
                        help="compare speedups against a committed baseline; "
                             "exit non-zero on a >2x regression")
    parser.add_argument("--trace-jsonl", default=None, metavar="PATH",
                        help="trace the end-to-end session, assert one "
                             "causally-linked span tree per admitted frame, "
                             "and write the spans here")
    parser.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="write the end-to-end metrics snapshot as JSON")
    parser.add_argument("--procs", type=int, default=None, metavar="N",
                        help="also time N-worker multi-process serving on one "
                             "OS shared-memory segment (thread vs process)")
    args = parser.parse_args(argv)

    report = {
        "schema": 1,
        "mode": "smoke" if args.smoke else "full",
        "generated_by": "benchmarks/bench_wallclock.py",
        "ops": bench_kernels(args.smoke),
    }
    if not args.smoke and args.out:
        # Also record smoke-sized speedups so CI smoke runs have a
        # like-for-like section to regression-check against.
        print("smoke-sized reference pass (for CI --check):")
        report["smoke_ops"] = bench_kernels(True)
    if not args.skip_e2e:
        report["end_to_end"] = bench_end_to_end(
            args.smoke, trace_jsonl=args.trace_jsonl,
            metrics_out=args.metrics_out,
        )
    if args.procs:
        report["procs"] = bench_procs(args.procs, args.smoke)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    if args.check:
        return check_regression(report, args.check)
    return 0


if __name__ == "__main__":
    sys.exit(main())
