"""Fig. 10c: the same multi-client merge story on vehicular KITTI-05.

Paper: KITTI-05 split across three vehicles; ATE spikes to ~28 m when a
client joins unmerged, drops to sub-meter after each ~150-180 ms merge,
and ends around 1.68 m (vs 1.72 m for single-user ORB-SLAM3).  Our
scaled-down circuit shows the same spike-merge-collapse series, with
magnitudes scaled to our shorter, slower traces.
"""

import numpy as np

from repro.datasets import kitti_dataset
from repro.metrics import absolute_trajectory_error
from tests.test_slam_system import run_system


def test_fig10c_kitti_multiclient(kitti_session_result, benchmark):
    result = benchmark.pedantic(
        lambda: kitti_session_result, rounds=1, iterations=1
    )
    merges = sorted(result.merges, key=lambda m: m.session_time)
    series = result.live_global_ate
    assert len(merges) >= 2  # clients B and C both merged

    print("\nFig. 10c — live global-map ATE (3 vehicles, KITTI-05-like)")
    for t, v in series:
        print(f"  t={t:6.2f} s   ATE={v * 100:8.1f} cm")
    for m in merges:
        print(f"  merge: client {m.client_id} at t={m.session_time:.2f} s "
              f"in {m.merge_ms:.0f} ms")

    first = merges[0].session_time
    spike = [v for t, v in series if first - 2.0 < t < first]
    settled = [v for t, v in series if t > merges[-1].session_time + 1.0]
    assert max(spike) > 0.5        # tens of meters in the paper; meters here
    assert np.mean(settled) < 0.5  # sub-meter after merging
    for m in merges:
        assert m.merge_ms < 200.0  # paper: 150-180 ms


def test_fig10c_matches_single_user_accuracy(kitti_session_result, benchmark):
    """Paper: final multi-client ATE (1.68 m) ~ single-user (1.72 m)."""
    result = kitti_session_result
    multi = max(result.client_ate(cid).rmse for cid in result.outcomes)
    ds = kitti_dataset("KITTI-05", duration=14.0, rate=10.0)
    single_system, _ = benchmark.pedantic(
        lambda: run_system(ds), rounds=1, iterations=1
    )
    single = absolute_trajectory_error(
        single_system.estimated_trajectory(), ds.ground_truth
    ).rmse
    print(f"\nmulti-client worst ATE {multi * 100:.1f} cm vs "
          f"single-user {single * 100:.1f} cm")
    assert multi < max(3 * single, 0.5)
