"""Setup shim: metadata lives in pyproject.toml.

The legacy path (``setup.py develop``) is kept because the execution
environment has no network access and no ``wheel`` package, which PEP 517
editable builds require.
"""
from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "SLAM-Share (CoNEXT 2022) reproduction: edge-assisted multi-user "
        "visual-inertial SLAM for AR"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy", "scipy", "networkx"],
)
